// Package stats provides the small numeric helpers the workloads and
// experiment harnesses need: the standard normal CDF and quantile
// function, and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// NormCDF returns P(Z <= x) for a standard normal Z.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormInv returns the quantile function (inverse CDF) of the standard
// normal distribution, using Acklam's rational approximation refined by
// one Halley step; absolute error is below 1e-9 across (0, 1).
func NormInv(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case exactly(p, 0):
			return math.Inf(-1)
		case exactly(p, 1):
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients for Acklam's approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step using the exact CDF.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 for fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary is a compact description of a series of measurements.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		s.Mean, s.Min, s.Max = math.NaN(), math.NaN(), math.NaN()
		return s
	}
	s.Mean = Mean(xs)
	s.Std = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// String formats a Summary for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f", s.N, s.Mean, s.Std, s.Min, s.Max)
}

// Cholesky computes the lower-triangular factor L (row-major, n x n)
// of a symmetric positive-definite matrix A with A = L Lᵀ. It reports
// an error if A is not positive definite (within a small tolerance).
func Cholesky(a []float64, n int) ([]float64, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("stats: matrix has %d entries for n=%d", len(a), n)
	}
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 1e-12 {
					return nil, fmt.Errorf("stats: matrix not positive definite at pivot %d (%g)", i, sum)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	return l, nil
}
