package stats

// exactly reports whether x equals v bit-for-bit (IEEE semantics: NaN
// never matches, -0 matches +0). It is the one sanctioned home for ==
// on floats in this package, enforced by the floatcmp analyzer in
// internal/analysis; it exists for boundary tests against sentinel
// values (0 and 1 in quantile functions), where a tolerance would be
// wrong. Comparisons that should absorb rounding error must spell out
// an explicit tolerance.
func exactly(x, v float64) bool { return x == v }
