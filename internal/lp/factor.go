package lp

import "math"

// factor maintains the basis inverse in product form:
//
//	B^-1 = E_k · ... · E_1 · B0^-1
//
// where B0^-1 is either a signed diagonal (the ±identity artificial
// start basis) or a dense inverse produced by the last explicit
// refactorization, and each eta matrix E records one pivot as the
// sparse spike w = B^-1 A_enter it eliminated. Pivots therefore cost
// O(nnz(w)) instead of the O(m²) rank-one update a dense inverse
// needs, and Ftran/Btran stream over the spikes. The eta file is
// rebuilt into a fresh dense base whenever it grows past its budget or
// the drift-control pivot counter fires (see solver.refactorEvery).
//
// Spike storage is flat (shared index/value arenas with per-eta
// offsets) so a Workspace can replay thousands of solves without
// allocating.
type factor struct {
	m int
	// base is the dense row-major m×m inverse of the last
	// refactorization; nil means diagonal mode with diag[i] = ±1.
	base []float64
	diag []float64
	// Eta file: eta e pivots on row etaRow[e] with pivot value
	// etaPiv[e]; its off-pivot nonzeros are etaIdx/etaVal in
	// [etaOff[e], etaOff[e+1]).
	etaRow []int32
	etaPiv []float64
	etaOff []int32
	etaIdx []int32
	etaVal []float64
	// pivotsSince counts pivots since the last refactorization (drift
	// control, carried across warm solves sharing this factor).
	pivotsSince int
}

// resetDiag puts the factor in signed-diagonal mode for a cold start;
// signs are patched per row by the caller once artificial directions
// are known.
func (f *factor) resetDiag(m int) {
	f.m = m
	f.base = nil
	f.diag = growF64(f.diag, m)
	for i := range f.diag {
		f.diag[i] = 1
	}
	f.clearEtas()
	f.pivotsSince = 0
}

func (f *factor) clearEtas() {
	f.etaRow = f.etaRow[:0]
	f.etaPiv = f.etaPiv[:0]
	//alloc:amortized first clear allocates the one-element offset slice; later clears reuse it
	f.etaOff = append(f.etaOff[:0], 0)
	f.etaIdx = f.etaIdx[:0]
	f.etaVal = f.etaVal[:0]
}

// nnz returns the eta-file size (off-pivot nonzeros), the quantity the
// refactorization budget bounds.
func (f *factor) nnz() int { return len(f.etaVal) }

func (f *factor) numEtas() int { return len(f.etaRow) }

// appendEta records the pivot (w, leaveRow): the next B^-1 is E·B^-1
// with E built from spike w. Only the spike's nonzeros are stored.
func (f *factor) appendEta(w []float64, leaveRow int) {
	//alloc:amortized eta arenas grow to the between-refactorization high-water mark, then are truncated in place
	f.etaRow = append(f.etaRow, int32(leaveRow))
	//alloc:amortized eta arenas grow to the between-refactorization high-water mark, then are truncated in place
	f.etaPiv = append(f.etaPiv, w[leaveRow])
	for i, wi := range w {
		if i == leaveRow || isZero(wi) {
			continue
		}
		//alloc:amortized eta arenas grow to the between-refactorization high-water mark, then are truncated in place
		f.etaIdx = append(f.etaIdx, int32(i))
		//alloc:amortized eta arenas grow to the between-refactorization high-water mark, then are truncated in place
		f.etaVal = append(f.etaVal, wi)
	}
	//alloc:amortized eta arenas grow to the between-refactorization high-water mark, then are truncated in place
	f.etaOff = append(f.etaOff, int32(len(f.etaVal)))
	f.pivotsSince++
}

// applyEtas runs the eta file forward over v (the Ftran direction):
// for each eta, t = v[r]/piv; v[i] -= w_i·t; v[r] = t.
func (f *factor) applyEtas(v []float64) {
	for e := 0; e < len(f.etaRow); e++ {
		r := f.etaRow[e]
		vr := v[r]
		if isZero(vr) {
			continue
		}
		t := vr / f.etaPiv[e]
		for k := f.etaOff[e]; k < f.etaOff[e+1]; k++ {
			v[f.etaIdx[k]] -= f.etaVal[k] * t
		}
		v[r] = t
	}
}

// ftranCol computes out = B^-1 A_j from the sparse column store.
func (f *factor) ftranCol(col []centry, out []float64) {
	for i := range out[:f.m] {
		out[i] = 0
	}
	if f.base == nil {
		for _, e := range col {
			out[e.row] = f.diag[e.row] * e.coef
		}
	} else {
		m := f.m
		for _, e := range col {
			coef := e.coef
			c := e.row
			for r := 0; r < m; r++ {
				out[r] += coef * f.base[r*m+c]
			}
		}
	}
	f.applyEtas(out)
}

// ftranDense computes v = B^-1 v in place for a dense v, using scratch
// (length >= m) for the dense mat-vec.
func (f *factor) ftranDense(v, scratch []float64) {
	m := f.m
	if f.base == nil {
		for i := 0; i < m; i++ {
			v[i] *= f.diag[i]
		}
	} else {
		for r := 0; r < m; r++ {
			sum := 0.0
			row := f.base[r*m : (r+1)*m]
			for k := 0; k < m; k++ {
				sum += row[k] * v[k]
			}
			scratch[r] = sum
		}
		copy(v[:m], scratch[:m])
	}
	f.applyEtas(v)
}

// btran computes y = yᵀ B^-1 in place: the eta file runs in reverse
// (each eta adjusts only y[r]), then the base applies transposed.
func (f *factor) btran(y, scratch []float64) {
	for e := len(f.etaRow) - 1; e >= 0; e-- {
		r := f.etaRow[e]
		s := y[r]
		for k := f.etaOff[e]; k < f.etaOff[e+1]; k++ {
			s -= y[f.etaIdx[k]] * f.etaVal[k]
		}
		y[r] = s / f.etaPiv[e]
	}
	m := f.m
	if f.base == nil {
		for i := 0; i < m; i++ {
			y[i] *= f.diag[i]
		}
		return
	}
	for k := 0; k < m; k++ {
		scratch[k] = 0
	}
	for r := 0; r < m; r++ {
		yr := y[r]
		if isZero(yr) {
			continue
		}
		row := f.base[r*m : (r+1)*m]
		for k := 0; k < m; k++ {
			scratch[k] += yr * row[k]
		}
	}
	copy(y[:m], scratch[:m])
}

// refactorize rebuilds the dense base inverse from the given basis
// columns by Gauss-Jordan elimination with partial pivoting, wiping
// the eta file and accumulated floating-point drift. mat is reusable
// scratch. Returns false (leaving the factor untouched) when the basis
// matrix is numerically singular.
func (f *factor) refactorize(basis []int, cols [][]centry, mat []float64) bool {
	m := len(basis)
	mat = mat[:m*m]
	for i := range mat {
		mat[i] = 0
	}
	next := growF64(f.baseScratch(), m*m)
	for i := range next {
		next[i] = 0
	}
	for col, bj := range basis {
		for _, e := range cols[bj] {
			mat[e.row*m+col] = e.coef
		}
		next[col*m+col] = 1
	}
	for col := 0; col < m; col++ {
		p := col
		for r := col + 1; r < m; r++ {
			if math.Abs(mat[r*m+col]) > math.Abs(mat[p*m+col]) {
				p = r
			}
		}
		if isZero(mat[p*m+col]) {
			return false
		}
		if p != col {
			for k := 0; k < m; k++ {
				mat[p*m+k], mat[col*m+k] = mat[col*m+k], mat[p*m+k]
				next[p*m+k], next[col*m+k] = next[col*m+k], next[p*m+k]
			}
		}
		inv := 1 / mat[col*m+col]
		for k := 0; k < m; k++ {
			mat[col*m+k] *= inv
			next[col*m+k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			fc := mat[r*m+col]
			if isZero(fc) {
				continue
			}
			for k := 0; k < m; k++ {
				mat[r*m+k] -= fc * mat[col*m+k]
				next[r*m+k] -= fc * next[col*m+k]
			}
		}
	}
	f.m = m
	f.base = next
	f.clearEtas()
	f.pivotsSince = 0
	return true
}

// baseScratch returns the retired dense base (if any) for reuse as the
// next refactorization target, so alternating refactorizations don't
// allocate.
func (f *factor) baseScratch() []float64 {
	if f.base != nil {
		return f.base[:0]
	}
	return nil
}

// growF64 returns a slice of length n, reusing buf's storage when it
// is large enough and zeroing nothing.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	//alloc:amortized buffers grow to the high-water mark and are retained by the workspace
	return make([]float64, n)
}

func growInt(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	//alloc:amortized buffers grow to the high-water mark and are retained by the workspace
	return make([]int, n)
}

func growVstat(buf []vstat, n int) []vstat {
	if cap(buf) >= n {
		return buf[:n]
	}
	//alloc:amortized buffers grow to the high-water mark and are retained by the workspace
	return make([]vstat, n)
}

func growInt8(buf []int8, n int) []int8 {
	if cap(buf) >= n {
		return buf[:n]
	}
	//alloc:amortized buffers grow to the high-water mark and are retained by the workspace
	return make([]int8, n)
}
