package lp

// Workspace owns every piece of per-solve state the solver needs: the
// solver shell, the basis factorization, the sparse column store, and
// the Solution backing arrays. Passing one Workspace through
// Options.Workspace across repeated solves makes the solver core
// allocation-free at steady state — the hot property the parametric
// planners rely on when sweeping budgets.
//
// A Workspace is not safe for concurrent use. The Solution returned by
// a solve through a Workspace (including its X and Duals slices, and
// the captured Basis) is valid until the next solve through the same
// Workspace.
//
// The column store is cached per (Model, StructVersion): re-solving the
// same model — even after in-place RHS/objective/bound mutations —
// skips canonicalization entirely, while any structural edit or a
// different model triggers a rebuild.
//
//confine:goroutine
type Workspace struct {
	s solver
	f factor

	// Column-store cache: cols/arena materialize colModel's rows at
	// structural version colVersion.
	colModel   *Model
	colVersion uint64
	cols       [][]centry
	arena      []centry
	colLen     []int32

	// Reusable outputs.
	sol      Solution
	x, duals []float64
	basisOut Basis

	// seq numbers solves through this Workspace; lastSeq/lastModel/
	// lastVersion identify the solve whose final basis the factor
	// currently represents, letting a chained warm solve skip the
	// refactorization entirely.
	seq         uint64
	lastSeq     uint64
	lastModel   *Model
	lastVersion uint64
}

// NewWorkspace returns an empty workspace; buffers grow on first use
// and are retained across solves.
func NewWorkspace() *Workspace { return &Workspace{} }

// prepare sizes the solver shell for m and refreshes the per-solve
// inputs (costs, bounds, right-hand sides) from the model, reusing the
// cached column store when the structure is unchanged.
//
//alloc:none
func (ws *Workspace) prepare(m *Model, opts Options) *solver {
	rows := len(m.rows)
	opts = opts.withDefaults(rows)
	ws.seq++

	s := &ws.s
	s.f = &ws.f
	s.m = rows
	s.nStruct = m.NumVars()
	s.nSlack = 0
	for _, r := range m.rows {
		if r.sense != EQ {
			s.nSlack++
		}
	}
	s.nTotal = s.nStruct + s.nSlack + rows // artificials allocated up front
	s.artStart = s.nStruct + s.nSlack
	s.tol = opts.Tol
	s.opts = opts
	s.maxIt = opts.MaxIters
	s.iters, s.pivotsTotal, s.degenerate, s.flips = 0, 0, 0, 0

	if ws.colModel != m || ws.colVersion != m.structVersion {
		ws.buildCols(m, rows)
	}
	s.cols = ws.cols

	s.c = growF64(s.c, s.nTotal)
	s.lo = growF64(s.lo, s.nTotal)
	s.hi = growF64(s.hi, s.nTotal)
	s.b = growF64(s.b, rows)
	sign := 1.0
	if m.maximize {
		sign = -1
	}
	for j := 0; j < s.nStruct; j++ {
		s.c[j] = sign * m.obj[j]
		s.lo[j], s.hi[j] = m.lo[j], m.hi[j]
	}
	for j := s.nStruct; j < s.artStart; j++ {
		s.c[j], s.lo[j], s.hi[j] = 0, 0, Inf // slacks
	}
	for j := s.artStart; j < s.nTotal; j++ {
		s.c[j], s.lo[j], s.hi[j] = 0, 0, 0 // artificials, opened by phase 1
	}
	for r, rw := range m.rows {
		s.b[r] = rw.rhs
	}

	s.stat = growVstat(s.stat, s.nTotal)
	s.basis = growInt(s.basis, rows)
	s.xB = growF64(s.xB, rows)
	s.xN = growF64(s.xN, s.nTotal)
	s.y = growF64(s.y, rows)
	s.w = growF64(s.w, rows)
	s.rho = growF64(s.rho, rows)
	s.scr = growF64(s.scr, rows)
	s.resid = growF64(s.resid, rows)
	s.p1c = growF64(s.p1c, s.nTotal)
	s.mat = growF64(s.mat, rows*rows)
	return s
}

// buildCols materializes the sparse column store for m into the flat
// arena: structural columns first, then one singleton per slack, then
// one singleton per artificial (sign patched by each cold run).
func (ws *Workspace) buildCols(m *Model, rows int) {
	nStruct := m.NumVars()
	nSlack, terms := 0, 0
	for _, r := range m.rows {
		if r.sense != EQ {
			nSlack++
		}
		terms += len(r.terms)
	}
	nTotal := nStruct + nSlack + rows
	need := terms + nSlack + rows
	if cap(ws.arena) >= need {
		ws.arena = ws.arena[:need]
	} else {
		//alloc:amortized arena grows to the structural high-water mark, then is reused
		ws.arena = make([]centry, need)
	}
	if cap(ws.cols) >= nTotal {
		ws.cols = ws.cols[:nTotal]
	} else {
		//alloc:amortized column headers grow to the structural high-water mark, then are reused
		ws.cols = make([][]centry, nTotal)
	}
	if cap(ws.colLen) >= nStruct {
		ws.colLen = ws.colLen[:nStruct]
	} else {
		//alloc:amortized per-column counts grow to the structural high-water mark, then are reused
		ws.colLen = make([]int32, nStruct)
	}
	for j := range ws.colLen {
		ws.colLen[j] = 0
	}
	for _, rw := range m.rows {
		for _, t := range rw.terms {
			ws.colLen[t.Var]++
		}
	}
	off := 0
	for j := 0; j < nStruct; j++ {
		n := int(ws.colLen[j])
		ws.cols[j] = ws.arena[off : off : off+n]
		off += n
	}
	for r, rw := range m.rows {
		for _, t := range rw.terms {
			//alloc:amortized appends fill the capacity pre-carved from the arena above; they can never grow
			ws.cols[t.Var] = append(ws.cols[t.Var], centry{row: r, coef: t.Coef})
		}
	}
	// Slack columns: row + slack == rhs for LE (slack in [0, inf)),
	// row - slack == rhs for GE.
	slack := nStruct
	for r, rw := range m.rows {
		if rw.sense == EQ {
			continue
		}
		coef := 1.0
		if rw.sense == GE {
			coef = -1
		}
		ws.arena[off] = centry{row: r, coef: coef}
		ws.cols[slack] = ws.arena[off : off+1 : off+1]
		off++
		slack++
	}
	art := nStruct + nSlack
	for r := 0; r < rows; r++ {
		ws.arena[off] = centry{row: r, coef: 1}
		ws.cols[art+r] = ws.arena[off : off+1 : off+1]
		off++
	}
	ws.colModel = m
	ws.colVersion = m.structVersion
}

// takeSolution assembles the solve result into the workspace-owned
// Solution. X and Duals are filled for Optimal and IterationLimit
// outcomes and zeroed otherwise.
//
//alloc:none
func (ws *Workspace) takeSolution(m *Model, s *solver, st Status) *Solution {
	ws.x = growF64(ws.x, s.nStruct)
	ws.duals = growF64(ws.duals, s.m)
	sol := &ws.sol
	*sol = Solution{
		Status:           st,
		X:                ws.x,
		Duals:            ws.duals,
		Iterations:       s.iters,
		Pivots:           s.pivotsTotal,
		DegeneratePivots: s.degenerate,
		BoundFlips:       s.flips,
	}
	if st == Optimal || st == IterationLimit {
		for j := 0; j < s.nStruct; j++ {
			sol.X[j] = s.xN[j]
		}
		for r, bj := range s.basis[:s.m] {
			if bj < s.nStruct {
				sol.X[bj] = s.xB[r]
			}
		}
		sol.Objective = m.Objective(sol.X)
		s.computeDuals(s.c)
		copy(sol.Duals, s.y[:s.m])
		if m.maximize {
			for r := range sol.Duals {
				sol.Duals[r] = -sol.Duals[r]
			}
		}
	} else {
		for i := range sol.X {
			sol.X[i] = 0
		}
		for i := range sol.Duals {
			sol.Duals[i] = 0
		}
		sol.Objective = 0
	}
	return sol
}

// captureBasis snapshots the final basis into the workspace-owned
// Basis for a later warm re-solve.
//
//alloc:none
func (ws *Workspace) captureBasis(m *Model, s *solver) *Basis {
	b := &ws.basisOut
	b.model = m
	b.structVersion = m.structVersion
	b.basis = growInt(b.basis, s.m)
	copy(b.basis, s.basis[:s.m])
	b.stat = growVstat(b.stat, s.nTotal)
	copy(b.stat, s.stat[:s.nTotal])
	b.artSign = growInt8(b.artSign, s.m)
	for r := 0; r < s.m; r++ {
		if s.cols[s.artStart+r][0].coef < 0 {
			b.artSign[r] = -1
		} else {
			b.artSign[r] = 1
		}
	}
	b.ws = ws
	b.seq = ws.seq
	return b
}

// noteSolved records which solve the factor's state corresponds to, so
// the next warm solve through this workspace can reuse it.
//
//alloc:none
func (ws *Workspace) noteSolved(m *Model) {
	ws.lastSeq = ws.seq
	ws.lastModel = m
	ws.lastVersion = m.structVersion
}
