package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOrFail(t *testing.T, m *Model, opts Options) *Solution {
	t.Helper()
	sol, err := m.Solve(opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if err := CheckOptimal(m, sol, 1e-6); err != nil {
		t.Fatalf("certificate: %v", err)
	}
	return sol
}

func TestSolveTrivialBounds(t *testing.T) {
	// min -x, 0 <= x <= 3: optimum at x = 3 with no constraints... but
	// the solver needs at least zero rows; exercise the no-row path via
	// one redundant row.
	m := NewModel()
	x := m.MustVar(0, 3, -1, "x")
	m.MustConstr([]Term{{x, 1}}, LE, 10)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.X[x]-3) > 1e-8 {
		t.Errorf("x = %g, want 3", sol.X[x])
	}
	if math.Abs(sol.Objective-(-3)) > 1e-8 {
		t.Errorf("objective = %g, want -3", sol.Objective)
	}
}

func TestSolveClassicTwoVar(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18; optimum (2, 6)
	// with objective 36 (Dantzig's textbook example).
	m := NewModel()
	m.Maximize()
	x := m.MustVar(0, Inf, 3, "x")
	y := m.MustVar(0, Inf, 5, "y")
	m.MustConstr([]Term{{x, 1}}, LE, 4)
	m.MustConstr([]Term{{y, 2}}, LE, 12)
	m.MustConstr([]Term{{x, 3}, {y, 2}}, LE, 18)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.X[x]-2) > 1e-7 || math.Abs(sol.X[y]-6) > 1e-7 {
		t.Errorf("solution (%g, %g), want (2, 6)", sol.X[x], sol.X[y])
	}
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
}

func TestSolveEqualityAndGE(t *testing.T) {
	// min x + 2y s.t. x + y == 10, x >= 2, y >= 3  =>  (7, 3), obj 13.
	m := NewModel()
	x := m.MustVar(2, Inf, 1, "x")
	y := m.MustVar(3, Inf, 2, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, EQ, 10)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.X[x]-7) > 1e-7 || math.Abs(sol.X[y]-3) > 1e-7 {
		t.Errorf("solution (%g, %g), want (7, 3)", sol.X[x], sol.X[y])
	}
}

func TestSolveGERow(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x - y <= 2, x,y >= 0. Optimal at
	// (4, 0)? obj 8; or (3,1): 9; (0,4): 12. x-y<=2 forbids (4,0)
	// (4-0=4>2). Vertex of x+y=4, x-y=2: (3,1) obj 9. Check x=2,y=2:
	// obj 10. So optimum is (3, 1) with 9.
	m := NewModel()
	x := m.MustVar(0, Inf, 2, "x")
	y := m.MustVar(0, Inf, 3, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, GE, 4)
	m.MustConstr([]Term{{x, 1}, {y, -1}}, LE, 2)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.Objective-9) > 1e-7 {
		t.Errorf("objective = %g, want 9 at (3,1); got (%g, %g)", sol.Objective, sol.X[x], sol.X[y])
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := NewModel()
	x := m.MustVar(0, 1, 1, "x")
	m.MustConstr([]Term{{x, 1}}, GE, 5)
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	m := NewModel()
	x := m.MustVar(0, Inf, -1, "x")
	y := m.MustVar(0, Inf, 0, "y")
	m.MustConstr([]Term{{x, 1}, {y, -1}}, LE, 1)
	sol, err := m.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveUpperBoundsNoRows(t *testing.T) {
	// Bound flips only: max x + y with box bounds and one slack row.
	m := NewModel()
	m.Maximize()
	x := m.MustVar(1, 5, 1, "x")
	y := m.MustVar(-2, 2, 1, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, LE, 100)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.X[x]-5) > 1e-8 || math.Abs(sol.X[y]-2) > 1e-8 {
		t.Errorf("solution (%g, %g), want (5, 2)", sol.X[x], sol.X[y])
	}
}

func TestSolveNegativeLowerBounds(t *testing.T) {
	// min x s.t. x >= -3 via bound; x + y >= -1, y in [0, 2].
	m := NewModel()
	x := m.MustVar(-3, Inf, 1, "x")
	y := m.MustVar(0, 2, 0, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, GE, -1)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.X[x]-(-3)) > 1e-7 {
		t.Errorf("x = %g, want -3", sol.X[x])
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A degenerate problem that cycles under naive Dantzig pricing
	// without anti-cycling (Beale's example).
	m := NewModel()
	x1 := m.MustVar(0, Inf, -0.75, "x1")
	x2 := m.MustVar(0, Inf, 150, "x2")
	x3 := m.MustVar(0, Inf, -0.02, "x3")
	x4 := m.MustVar(0, Inf, 6, "x4")
	m.MustConstr([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	m.MustConstr([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	m.MustConstr([]Term{{x3, 1}}, LE, 1)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.Objective-(-0.05)) > 1e-7 {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

func TestSolveBlandMatchesDantzig(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m := randomFeasibleModel(rng, 6, 8)
		d, err := m.Solve(Options{Pricing: Dantzig})
		if err != nil {
			t.Fatalf("dantzig: %v", err)
		}
		b, err := m.Solve(Options{Pricing: Bland})
		if err != nil {
			t.Fatalf("bland: %v", err)
		}
		if d.Status != Optimal || b.Status != Optimal {
			t.Fatalf("trial %d: status %v vs %v", trial, d.Status, b.Status)
		}
		if math.Abs(d.Objective-b.Objective) > 1e-6*(1+math.Abs(d.Objective)) {
			t.Errorf("trial %d: objective %g (dantzig) vs %g (bland)", trial, d.Objective, b.Objective)
		}
	}
}

// randomFeasibleModel builds a random box-bounded minimization with LE
// rows loose enough to keep the origin-ish corner feasible.
func randomFeasibleModel(rng *rand.Rand, nvars, nrows int) *Model {
	m := NewModel()
	ids := make([]VarID, nvars)
	for i := range ids {
		ids[i] = m.MustVar(0, 1+rng.Float64()*4, rng.NormFloat64(), "v")
	}
	for r := 0; r < nrows; r++ {
		var terms []Term
		for _, id := range ids {
			if rng.Float64() < 0.6 {
				terms = append(terms, Term{id, rng.NormFloat64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{ids[0], 1})
		}
		// RHS chosen so that the all-lower-bounds point satisfies the
		// row (lhs there is 0 since lo = 0).
		m.MustConstr(terms, LE, rng.Float64()*3)
	}
	return m
}

func TestRandomModelsCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		m := randomFeasibleModel(rng, 3+rng.Intn(10), 1+rng.Intn(12))
		sol, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if err := CheckOptimal(m, sol, 1e-6); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
	}
}

func TestModelValidation(t *testing.T) {
	m := NewModel()
	if _, err := m.AddVar(2, 1, 0, "bad"); err == nil {
		t.Error("AddVar accepted lo > hi")
	}
	x := m.MustVar(0, 1, 1, "x")
	if err := m.AddConstr(nil, LE, 0); err == nil {
		t.Error("AddConstr accepted empty row")
	}
	if err := m.AddConstr([]Term{{Var: 99, Coef: 1}}, LE, 0); err == nil {
		t.Error("AddConstr accepted unknown variable")
	}
	if err := m.AddConstr([]Term{{x, 1}, {x, -1}}, LE, -1); err == nil {
		t.Error("AddConstr accepted infeasible zero row")
	}
	if err := m.AddConstr([]Term{{x, 1}, {x, -1}}, LE, 1); err != nil {
		t.Errorf("AddConstr rejected trivially true zero row: %v", err)
	}
	if m.NumConstrs() != 0 {
		t.Errorf("trivially true row was retained: %d rows", m.NumConstrs())
	}
}

func TestMergedTerms(t *testing.T) {
	// x + x <= 4 must behave as 2x <= 4.
	m := NewModel()
	m.Maximize()
	x := m.MustVar(0, Inf, 1, "x")
	m.MustConstr([]Term{{x, 1}, {x, 1}}, LE, 4)
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.X[x]-2) > 1e-8 {
		t.Errorf("x = %g, want 2", sol.X[x])
	}
}

// randomMixedModel builds a model with LE/GE/EQ rows that is feasible
// by construction: rows are anchored at a known interior point.
func randomMixedModel(rng *rand.Rand, nvars, nrows int) *Model {
	m := NewModel()
	point := make([]float64, nvars)
	ids := make([]VarID, nvars)
	for i := range ids {
		hi := 1 + rng.Float64()*4
		point[i] = rng.Float64() * hi
		ids[i] = m.MustVar(0, hi, rng.NormFloat64(), "v")
	}
	for r := 0; r < nrows; r++ {
		var terms []Term
		lhs := 0.0
		for i, id := range ids {
			if rng.Float64() < 0.5 {
				c := rng.NormFloat64()
				terms = append(terms, Term{id, c})
				lhs += c * point[i]
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{ids[0], 1})
			lhs = point[0]
		}
		switch rng.Intn(3) {
		case 0:
			m.MustConstr(terms, LE, lhs+rng.Float64())
		case 1:
			m.MustConstr(terms, GE, lhs-rng.Float64())
		default:
			m.MustConstr(terms, EQ, lhs)
		}
	}
	return m
}

func TestRandomMixedModelsCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 120; trial++ {
		m := randomMixedModel(rng, 2+rng.Intn(10), 1+rng.Intn(10))
		if trial%2 == 0 {
			m.Maximize()
		}
		sol, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (model is feasible by construction)", trial, sol.Status)
		}
		if err := CheckOptimal(m, sol, 1e-6); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		// Presolve path must agree.
		pre, err := SolveWithPresolve(m, Options{})
		if err != nil {
			t.Fatalf("trial %d: presolve: %v", trial, err)
		}
		if pre.Status != Optimal {
			t.Fatalf("trial %d: presolve status %v", trial, pre.Status)
		}
		if d := sol.Objective - pre.Objective; d > 1e-6*(1+mabs(sol.Objective)) || d < -1e-6*(1+mabs(sol.Objective)) {
			t.Errorf("trial %d: objective %g vs presolved %g", trial, sol.Objective, pre.Objective)
		}
	}
}

func mabs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRefactorizationPreservesSolutions(t *testing.T) {
	// Force a basis reinversion every few pivots: results must match
	// the update-only path exactly (modulo tolerance).
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 40; trial++ {
		m := randomMixedModel(rng, 4+rng.Intn(8), 3+rng.Intn(8))
		plain, err := m.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		refac, err := m.Solve(Options{RefactorEvery: 2})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Status != refac.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, plain.Status, refac.Status)
		}
		if plain.Status != Optimal {
			continue
		}
		if math.Abs(plain.Objective-refac.Objective) > 1e-6*(1+math.Abs(plain.Objective)) {
			t.Errorf("trial %d: objective %g vs %g under refactorization", trial, plain.Objective, refac.Objective)
		}
		if err := CheckOptimal(m, refac, 1e-6); err != nil {
			t.Errorf("trial %d: refactored certificate: %v", trial, err)
		}
	}
}

func TestModelAccessors(t *testing.T) {
	m := NewModel()
	x := m.MustVar(1, 5, 2, "xvar")
	if m.Name(x) != "xvar" {
		t.Errorf("Name = %q", m.Name(x))
	}
	if lo, hi := m.Bounds(x); lo != 1 || hi != 5 {
		t.Errorf("Bounds = %g, %g", lo, hi)
	}
	for _, s := range []Sense{LE, GE, EQ, Sense(9)} {
		if s.String() == "" {
			t.Errorf("empty String for %d", int(s))
		}
	}
	for _, st := range []Status{Optimal, Infeasible, Unbounded, IterationLimit, Status(9)} {
		if st.String() == "" {
			t.Errorf("empty String for status %d", int(st))
		}
	}
}
