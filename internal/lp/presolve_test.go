package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestPresolveMatchesDirectSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 150; trial++ {
		m := randomFeasibleModel(rng, 3+rng.Intn(10), 1+rng.Intn(12))
		if trial%3 == 0 {
			m.Maximize()
		}
		direct, err := m.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		pre, err := SolveWithPresolve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if direct.Status != pre.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, direct.Status, pre.Status)
		}
		if direct.Status != Optimal {
			continue
		}
		if math.Abs(direct.Objective-pre.Objective) > 1e-6*(1+math.Abs(direct.Objective)) {
			t.Errorf("trial %d: objective %g vs %g", trial, direct.Objective, pre.Objective)
		}
		if v := m.Violation(pre.X); v > 1e-6 {
			t.Errorf("trial %d: presolved solution infeasible by %g", trial, v)
		}
	}
}

func TestPresolveSingleton(t *testing.T) {
	// 2x <= 4 should become x <= 2 and vanish as a row.
	m := NewModel()
	m.Maximize()
	x := m.MustVar(0, Inf, 1, "x")
	m.MustConstr([]Term{{x, 2}}, LE, 4)
	sol, err := SolveWithPresolve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.X[x]-2) > 1e-9 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestPresolveAllFixed(t *testing.T) {
	m := NewModel()
	x := m.MustVar(3, 3, 5, "x")
	y := m.MustVar(0, Inf, 1, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, LE, 3) // forces y = 0
	sol, err := SolveWithPresolve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.X[x] != 3 || sol.X[y] != 0 {
		t.Errorf("x = %v", sol.X)
	}
	if math.Abs(sol.Objective-15) > 1e-9 {
		t.Errorf("objective %g", sol.Objective)
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	m := NewModel()
	x := m.MustVar(0, 1, 0, "x")
	m.MustConstr([]Term{{x, 1}}, GE, 5)
	sol, err := SolveWithPresolve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
	// Conflicting pair of rows over two variables.
	m2 := NewModel()
	a := m2.MustVar(0, 10, 0, "a")
	b := m2.MustVar(0, 10, 0, "b")
	m2.MustConstr([]Term{{a, 1}, {b, 1}}, GE, 25)
	sol2, err := SolveWithPresolve(m2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Infeasible {
		t.Errorf("status %v, want infeasible", sol2.Status)
	}
}

func TestPresolveForcingRow(t *testing.T) {
	// x + y >= 4 with x <= 2, y <= 2 forces x = y = 2.
	m := NewModel()
	x := m.MustVar(0, 2, 1, "x")
	y := m.MustVar(0, 2, 3, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, GE, 4)
	sol, err := SolveWithPresolve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.X[x] != 2 || sol.X[y] != 2 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestPresolveRedundantRow(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.MustVar(0, 1, 1, "x")
	y := m.MustVar(0, 1, 1, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, LE, 5) // never binding
	sol, err := SolveWithPresolve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("sol = %+v", sol)
	}
}
