package lp

// Clone returns an independently mutable copy of the model. The
// in-place mutators (SetRHS, SetObjCoef, SetVarBound) and structural
// edits (AddVar, AddConstr) on either side never affect the other:
// the objective, bound, name, and row slices are copied with exact
// capacity, so even an append reallocates instead of sharing a
// backing array.
//
// Constraint term slices are shared between the original and the
// clone. They are read-only after construction — SetRHS rewrites the
// row's rhs field (copied per clone), never its terms — which is what
// makes cloning a built parametric program cheap enough to do once
// per pool worker (see core.Snapshot).
//
// The clone keeps the original's StructVersion, but a Basis captured
// from a solve of one model is never warm-startable on another:
// Basis validity is checked by model pointer identity, so each clone
// starts its own warm chain with one cold solve.
func (m *Model) Clone() *Model {
	c := &Model{
		obj:           make([]float64, len(m.obj)),
		lo:            make([]float64, len(m.lo)),
		hi:            make([]float64, len(m.hi)),
		names:         make([]string, len(m.names)),
		rows:          make([]row, len(m.rows)),
		maximize:      m.maximize,
		structVersion: m.structVersion,
	}
	copy(c.obj, m.obj)
	copy(c.lo, m.lo)
	copy(c.hi, m.hi)
	copy(c.names, m.names)
	copy(c.rows, m.rows)
	return c
}
