package lp

import (
	"fmt"
	"math"
	"time"

	"prospector/internal/obs"
)

// Status classifies the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Pricing selects the entering-variable rule.
type Pricing int

// Pricing rules.
const (
	// Dantzig picks the most negative reduced cost. Fast in practice;
	// the solver falls back to Bland automatically when it stalls.
	Dantzig Pricing = iota
	// Bland picks the first eligible variable; finite but slower.
	Bland
)

// Options tunes the solver. The zero value gives sensible defaults.
type Options struct {
	// MaxIters bounds total pivots across both phases; 0 means
	// 5000 + 50*rows. A warm solve gets the same budget; its internal
	// cold fallback (when the cached basis proves unusable) restarts
	// the count, so a fallback solve is never budget-starved by the
	// failed warm attempt.
	MaxIters int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-7.
	Tol float64
	// Pricing selects the entering rule; default Dantzig.
	Pricing Pricing
	// RefactorEvery overrides the pivot budget between explicit basis
	// refactorizations; 0 keeps the size-based default. Mainly for
	// tests and numerically hostile models.
	RefactorEvery int
	// Workspace, when non-nil, supplies all per-solve scratch (solver
	// state, factorization storage, the returned Solution's backing
	// arrays). Repeat solves through one Workspace are allocation-free
	// at steady state. A Workspace is single-goroutine; the Solution
	// it returns is valid until the next solve through the same
	// Workspace.
	Workspace *Workspace
	// Warm, when non-nil, is a Basis captured from a previous solve
	// (KeepBasis) of the same Model. The solver restores it and runs
	// dual-simplex recovery pivots instead of the two cold phases; if
	// the basis is stale (structural edits) or numerically unusable it
	// falls back to a cold solve internally (lp.warm_fallbacks).
	Warm *Basis
	// KeepBasis asks Solve to capture the final basis on Solution.Basis
	// for a later warm re-solve. With a Workspace the Basis storage is
	// reused, invalidating the previously captured Basis.
	KeepBasis bool
	// Obs, when non-nil, receives solve metrics (lp.* counters and the
	// lp.solve_seconds histogram). A nil registry costs one check per
	// solve.
	Obs *obs.Registry
	// Now, when non-nil, supplies the clock for the lp.solve_seconds
	// histogram (typically time.Now at the CLI layer). The solver never
	// reads the wall clock itself, keeping library solves replayable;
	// with Now nil, solve timing is simply not recorded.
	Now func() time.Time
	// Trace, when non-nil, receives one lp.solve span per Solve call.
	Trace *obs.Tracer
	// Span, when non-nil, parents the lp.solve spans (requires Trace or
	// an open span; a Span without Trace still emits through the span).
	Span *obs.Span
}

func (o Options) withDefaults(rows int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 5000 + 50*rows
	}
	if isZero(o.Tol) {
		o.Tol = 1e-7
	}
	return o
}

// Solution is the result of a solve. When the solve ran through a
// Workspace, X and Duals alias Workspace storage and are valid until
// the next solve through that Workspace.
type Solution struct {
	Status     Status
	Objective  float64   // in the model's declared sense
	X          []float64 // one entry per model variable
	Duals      []float64 // one entry per constraint row (minimization sign convention)
	Iterations int
	// Pivots counts basis changes; DegeneratePivots the subset with a
	// ~zero step; BoundFlips the nonbasic bound-to-bound moves. All
	// three sum across both phases.
	Pivots           int
	DegeneratePivots int
	BoundFlips       int
	// Warm reports that this solve reused the supplied Basis (possibly
	// with recovery pivots); false for cold solves and for warm
	// attempts that fell back to a cold solve.
	Warm bool
	// Basis is the captured final basis when Options.KeepBasis was set
	// and the solve ended Optimal; nil otherwise.
	Basis *Basis
}

// variable status within the simplex.
type vstat int8

const (
	atLower vstat = iota
	atUpper
	basic
	nonbasicFree // free variable resting at zero
)

// solver holds the standard-form problem: minimize c.x subject to
// Ax = b, lo <= x <= hi, where columns 0..nStruct-1 are the model's
// variables, then one slack per inequality row, then one artificial
// per row (phase 1 only). All slice state lives in a Workspace so the
// shell can be replayed without allocating.
type solver struct {
	m, nStruct, nSlack int
	nTotal             int // structural + slack + artificial
	cols               [][]centry
	c                  []float64 // phase-2 costs
	lo, hi             []float64
	b                  []float64

	basis []int // basis[r] = column basic in row r
	stat  []vstat
	f     *factor   // basis inverse in product form
	xB    []float64 // values of basic variables
	xN    []float64 // current value of every column (authoritative for nonbasic)
	y     []float64 // duals scratch
	w     []float64 // entering column in basis coordinates
	rho   []float64 // dual simplex: row r of B^-1
	scr   []float64 // btran / dense mat-vec scratch
	resid []float64 // recomputeBasics right-hand side scratch
	p1c   []float64 // phase-1 cost vector
	mat   []float64 // refactorization scratch (reused, not reallocated)

	tol      float64
	opts     Options
	iters    int
	maxIt    int
	artStart int // first artificial column

	// Solve statistics, surfaced on Solution and in opts.Obs.
	pivotsTotal int
	degenerate  int
	flips       int
}

type centry struct {
	row  int
	coef float64
}

// Solve optimizes the model. The model may be reused, mutated in place
// (SetRHS, SetObjCoef, SetVarBound), or extended and solved again; each
// call is independent unless Options.Warm chains it to a prior basis.
func (m *Model) Solve(opts Options) (*Solution, error) {
	var start time.Time
	if opts.Now != nil {
		start = opts.Now()
	}
	ws := opts.Workspace
	if ws == nil {
		ws = &Workspace{}
	}
	s := ws.prepare(m, opts)
	var st Status
	kind := solveCold
	if opts.Warm != nil {
		st, kind = s.warmRun(m, opts.Warm, ws)
	} else {
		st = s.run()
	}
	sol := ws.takeSolution(m, s, st)
	sol.Warm = kind == solveWarm
	if opts.KeepBasis && st == Optimal {
		sol.Basis = ws.captureBasis(m, s)
	}
	ws.noteSolved(m)
	var elapsed time.Duration
	if opts.Now != nil {
		elapsed = opts.Now().Sub(start)
	}
	recordSolve(opts, sol, elapsed, opts.Now != nil, kind)
	return sol, nil
}

// run executes phase 1 then phase 2 and returns the final status.
//
//alloc:none
func (s *solver) run() Status {
	// Initial nonbasic point: every structural/slack column at its
	// finite bound nearest zero; free columns at zero.
	for j := 0; j < s.nStruct+s.nSlack; j++ {
		switch {
		case s.lo[j] > math.Inf(-1) && (math.Abs(s.lo[j]) <= math.Abs(s.hi[j]) || math.IsInf(s.hi[j], 1)):
			s.stat[j], s.xN[j] = atLower, s.lo[j]
		case !math.IsInf(s.hi[j], 1):
			s.stat[j], s.xN[j] = atUpper, s.hi[j]
		default:
			s.stat[j], s.xN[j] = nonbasicFree, 0
		}
	}
	// Residual r = b - A x_N decides artificial signs; basis starts as
	// the artificials with a signed-diagonal inverse.
	resid := s.resid[:s.m]
	copy(resid, s.b)
	for j := 0; j < s.nStruct+s.nSlack; j++ {
		if !isZero(s.xN[j]) {
			for _, e := range s.cols[j] {
				resid[e.row] -= e.coef * s.xN[j]
			}
		}
	}
	art := s.artStart
	needPhase1 := false
	for i := range s.p1c {
		s.p1c[i] = 0
	}
	s.f.resetDiag(s.m)
	for r := 0; r < s.m; r++ {
		j := art + r
		// The column arena persists across solves, so the sign must be
		// written both ways, not just flipped when negative.
		if resid[r] < 0 {
			s.cols[j][0].coef = -1
			s.f.diag[r] = -1
		} else {
			s.cols[j][0].coef = 1
		}
		s.basis[r] = j
		s.stat[j] = basic
		s.xB[r] = math.Abs(resid[r])
		s.hi[j] = Inf
		s.p1c[j] = 1
		if s.xB[r] > s.tol {
			needPhase1 = true
		}
	}

	if needPhase1 {
		st := s.iterate(s.p1c, true)
		if st == IterationLimit {
			return IterationLimit
		}
		infeas := 0.0
		for r := 0; r < s.m; r++ {
			if s.basis[r] >= art {
				infeas += s.xB[r]
			}
		}
		if infeas > s.tol*float64(1+s.m) {
			return Infeasible
		}
	}
	// Close the artificials: they may remain basic at ~zero but can
	// never grow again.
	for r := 0; r < s.m; r++ {
		j := art + r
		s.hi[j] = 0
		if s.stat[j] != basic {
			s.stat[j], s.xN[j] = atLower, 0
		}
	}
	return s.iterate(s.c, false)
}

// computeDuals sets s.y = cB^T B^-1 for the given cost vector.
func (s *solver) computeDuals(cost []float64) {
	for r := 0; r < s.m; r++ {
		s.y[r] = cost[s.basis[r]]
	}
	s.f.btran(s.y, s.scr)
}

// reducedCost returns c_j - y . A_j.
func (s *solver) reducedCost(cost []float64, j int) float64 {
	d := cost[j]
	for _, e := range s.cols[j] {
		d -= s.y[e.row] * e.coef
	}
	return d
}

// ftran computes w = B^-1 A_j.
func (s *solver) ftran(j int) {
	s.f.ftranCol(s.cols[j], s.w)
}

// iterate runs simplex pivots under the given cost vector until
// optimality (returns Optimal), unboundedness, or the iteration limit.
// phase1 restricts pricing to keep artificial columns from re-entering.
func (s *solver) iterate(cost []float64, phase1 bool) Status {
	stall := 0
	const stallLimit = 400 // degenerate pivots before forcing Bland
	for {
		if s.iters >= s.maxIt {
			return IterationLimit
		}
		s.maybeRefactor()
		s.computeDuals(cost)
		useBland := s.opts.Pricing == Bland || stall >= stallLimit
		enter, sigma := s.price(cost, useBland)
		if enter < 0 {
			return Optimal
		}
		s.iters++
		s.ftran(enter)
		t, leaveRow, flip, ok := s.ratioTest(enter, sigma)
		if !ok {
			if phase1 {
				// Phase-1 objective is bounded below by zero; an
				// unbounded ray here means numeric trouble. Treat as
				// stall and force Bland.
				stall = stallLimit
				continue
			}
			return Unbounded
		}
		if t <= s.tol {
			stall++
		} else {
			stall = 0
		}
		if flip {
			s.flips++
			s.applyBoundFlip(enter, sigma, t)
			continue
		}
		if t <= s.tol {
			s.degenerate++
		}
		// Leaving variable rests at whichever bound it hit: the basic
		// value was driven toward its lower bound when sigma*w > 0.
		leaveStat := atUpper
		if sigma*s.w[leaveRow] > 0 {
			leaveStat = atLower
		}
		s.pivot(enter, sigma, t, leaveRow, leaveStat)
	}
}

// price chooses the entering column and its direction sigma (+1 to
// increase, -1 to decrease). Returns enter = -1 at optimality.
func (s *solver) price(cost []float64, bland bool) (enter int, sigma float64) {
	enter = -1
	best := s.tol
	for j := 0; j < s.nTotal; j++ {
		st := s.stat[j]
		if st == basic || sameFloat(s.lo[j], s.hi[j]) {
			continue
		}
		if j >= s.artStart {
			// Artificials never re-enter the basis.
			continue
		}
		d := s.reducedCost(cost, j)
		var improving bool
		var dir float64
		switch st {
		case atLower:
			improving, dir = d < -s.tol, 1
		case atUpper:
			improving, dir = d > s.tol, -1
		case nonbasicFree:
			if d < -s.tol {
				improving, dir = true, 1
			} else if d > s.tol {
				improving, dir = true, -1
			}
		}
		if !improving {
			continue
		}
		if bland {
			return j, dir
		}
		if mag := math.Abs(d); mag > best {
			best, enter, sigma = mag, j, dir
		}
	}
	return enter, sigma
}

// ratioTest finds how far the entering variable can move. It returns
// the step t, the leaving row (if a basis change occurs), whether the
// move is a pure bound flip, and ok=false when the step is unbounded.
func (s *solver) ratioTest(enter int, sigma float64) (t float64, leaveRow int, flip bool, ok bool) {
	t = Inf
	leaveRow = -1
	// Entering variable's own range limits the step.
	if !math.IsInf(s.hi[enter], 1) && s.lo[enter] > math.Inf(-1) {
		t = s.hi[enter] - s.lo[enter]
		flip = true
	}
	for r := 0; r < s.m; r++ {
		wr := sigma * s.w[r]
		if math.Abs(wr) <= 1e-11 {
			continue
		}
		bj := s.basis[r]
		var lim float64
		if wr > 0 {
			// Basic value decreases toward its lower bound.
			if math.IsInf(s.lo[bj], -1) {
				continue
			}
			lim = (s.xB[r] - s.lo[bj]) / wr
		} else {
			if math.IsInf(s.hi[bj], 1) {
				continue
			}
			lim = (s.hi[bj] - s.xB[r]) / (-wr)
		}
		if lim < 0 {
			lim = 0
		}
		// Prefer the tightest limit; on near-ties keep the row with
		// the largest pivot magnitude for stability.
		if lim < t-1e-10 || (lim < t+1e-10 && leaveRow >= 0 &&
			math.Abs(s.w[r]) > math.Abs(s.w[leaveRow])) {
			t = lim
			leaveRow = r
			flip = false
		}
	}
	if math.IsInf(t, 1) {
		return 0, -1, false, false
	}
	return t, leaveRow, flip, true
}

// applyBoundFlip moves the entering variable across its range without a
// basis change.
func (s *solver) applyBoundFlip(enter int, sigma, t float64) {
	if sigma > 0 {
		s.stat[enter] = atUpper
		s.xN[enter] = s.hi[enter]
	} else {
		s.stat[enter] = atLower
		s.xN[enter] = s.lo[enter]
	}
	for r := 0; r < s.m; r++ {
		s.xB[r] -= sigma * t * s.w[r]
	}
}

// pivot swaps the entering column into the basis at leaveRow; the
// leaving variable rests at leaveStat (primal and dual steps place it
// on different sides, so the caller decides). Requires s.w to hold the
// entering column in basis coordinates.
func (s *solver) pivot(enter int, sigma, t float64, leaveRow int, leaveStat vstat) {
	leave := s.basis[leaveRow]
	// New value of the entering variable.
	newVal := s.xN[enter] + sigma*t
	// Update basic values.
	for r := 0; r < s.m; r++ {
		if r != leaveRow {
			s.xB[r] -= sigma * t * s.w[r]
		}
	}
	if leaveStat == atLower {
		s.stat[leave] = atLower
		s.xN[leave] = s.lo[leave]
	} else {
		s.stat[leave] = atUpper
		s.xN[leave] = s.hi[leave]
	}
	if math.IsInf(s.xN[leave], 0) {
		// A free variable leaving the basis: park at zero.
		s.stat[leave] = nonbasicFree
		s.xN[leave] = 0
	}
	s.basis[leaveRow] = enter
	s.stat[enter] = basic
	s.xB[leaveRow] = newVal
	s.pivotsTotal++
	s.f.appendEta(s.w, leaveRow)
}

// refactorEvery is the pivot budget between explicit refactorizations
// of the basis; the O(m^3) rebuild is amortized against the eta file's
// per-pivot cost.
func (s *solver) refactorEvery() int {
	if s.opts.RefactorEvery > 0 {
		return s.opts.RefactorEvery
	}
	if s.m < 200 {
		return 4000 // small bases barely drift; refactor rarely
	}
	return 1500
}

// etaBudget bounds the eta file's off-pivot nonzeros: past this, the
// per-iteration Ftran/Btran cost of replaying spikes exceeds what a
// fresh dense factorization amortizes to. The bound is deliberately a
// small multiple of one dense pass (m²/8): spikes are near-dense, so a
// long eta file makes every iteration pay several dense-pass
// equivalents — warm chains, which inherit the file across re-solves,
// are especially sensitive (a 4096 floor here once made chained warm
// iterations ~3x the cost of cold ones at m~70).
func (s *solver) etaBudget() int {
	b := s.m * s.m / 8
	if b < 128 {
		b = 128
	}
	return b
}

// maybeRefactor rebuilds the factor when the drift budget or the eta
// growth budget is exhausted. A singular basis keeps the stale factor
// (and resets the counter so the rebuild is not retried every pivot).
func (s *solver) maybeRefactor() {
	f := s.f
	if f.pivotsSince < s.refactorEvery() &&
		!(f.pivotsSince >= 32 && f.nnz() > s.etaBudget()) {
		return
	}
	if !f.refactorize(s.basis, s.cols, s.mat) {
		f.pivotsSince = 0
		return
	}
	s.recomputeBasics()
}

// recomputeBasics sets xB = B^-1 (b - N x_N) from authoritative
// nonbasic values.
func (s *solver) recomputeBasics() {
	resid := s.resid[:s.m]
	copy(resid, s.b)
	for j := 0; j < s.nTotal; j++ {
		if s.stat[j] == basic || isZero(s.xN[j]) {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.row] -= e.coef * s.xN[j]
		}
	}
	copy(s.xB[:s.m], resid)
	s.f.ftranDense(s.xB[:s.m], s.scr)
}
