package lp

import (
	"fmt"
	"math"
	"time"

	"prospector/internal/obs"
)

// Status classifies the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Pricing selects the entering-variable rule.
type Pricing int

// Pricing rules.
const (
	// Dantzig picks the most negative reduced cost. Fast in practice;
	// the solver falls back to Bland automatically when it stalls.
	Dantzig Pricing = iota
	// Bland picks the first eligible variable; finite but slower.
	Bland
)

// Options tunes the solver. The zero value gives sensible defaults.
type Options struct {
	// MaxIters bounds total pivots across both phases; 0 means
	// 5000 + 50*rows.
	MaxIters int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-7.
	Tol float64
	// Pricing selects the entering rule; default Dantzig.
	Pricing Pricing
	// RefactorEvery overrides the pivot budget between explicit basis
	// reinversions; 0 keeps the size-based default. Mainly for tests
	// and numerically hostile models.
	RefactorEvery int
	// Obs, when non-nil, receives solve metrics (lp.* counters and the
	// lp.solve_seconds histogram). A nil registry costs one check per
	// solve.
	Obs *obs.Registry
	// Now, when non-nil, supplies the clock for the lp.solve_seconds
	// histogram (typically time.Now at the CLI layer). The solver never
	// reads the wall clock itself, keeping library solves replayable;
	// with Now nil, solve timing is simply not recorded.
	Now func() time.Time
	// Trace, when non-nil, receives one lp.solve span per Solve call.
	Trace *obs.Tracer
	// Span, when non-nil, parents the lp.solve spans (requires Trace or
	// an open span; a Span without Trace still emits through the span).
	Span *obs.Span
}

func (o Options) withDefaults(rows int) Options {
	if o.MaxIters == 0 {
		o.MaxIters = 5000 + 50*rows
	}
	if isZero(o.Tol) {
		o.Tol = 1e-7
	}
	return o
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	Objective  float64   // in the model's declared sense
	X          []float64 // one entry per model variable
	Duals      []float64 // one entry per constraint row (minimization sign convention)
	Iterations int
	// Pivots counts basis changes; DegeneratePivots the subset with a
	// ~zero step; BoundFlips the nonbasic bound-to-bound moves. All
	// three sum across both phases.
	Pivots           int
	DegeneratePivots int
	BoundFlips       int
}

// variable status within the simplex.
type vstat int8

const (
	atLower vstat = iota
	atUpper
	basic
	nonbasicFree // free variable resting at zero
)

// solver holds the standard-form problem: minimize c.x subject to
// Ax = b, lo <= x <= hi, where columns 0..nStruct-1 are the model's
// variables, then one slack per inequality row, then one artificial
// per row (phase 1 only).
type solver struct {
	m, nStruct, nSlack int
	nTotal             int // structural + slack + artificial
	cols               [][]centry
	c                  []float64 // phase-2 costs
	lo, hi             []float64
	b                  []float64

	basis []int // basis[r] = column basic in row r
	stat  []vstat
	binv  []float64 // m*m row-major dense basis inverse
	xB    []float64 // values of basic variables
	xN    []float64 // current value of every column (authoritative for nonbasic)
	y     []float64 // duals scratch
	w     []float64 // entering column in basis coordinates

	tol      float64
	opts     Options
	iters    int
	maxIt    int
	artStart int // first artificial column
	pivots   int // pivots since last refactorization

	// Solve statistics, surfaced on Solution and in opts.Obs.
	pivotsTotal int
	degenerate  int
	flips       int
}

type centry struct {
	row  int
	coef float64
}

// Solve optimizes the model. The model may be reused or extended and
// solved again; each call is independent.
func (m *Model) Solve(opts Options) (*Solution, error) {
	var start time.Time
	if opts.Now != nil {
		start = opts.Now()
	}
	s, err := newSolver(m, opts)
	if err != nil {
		return nil, err
	}
	st := s.run()
	sol := &Solution{
		Status:           st,
		X:                make([]float64, m.NumVars()),
		Duals:            make([]float64, s.m),
		Iterations:       s.iters,
		Pivots:           s.pivotsTotal,
		DegeneratePivots: s.degenerate,
		BoundFlips:       s.flips,
	}
	var elapsed time.Duration
	if opts.Now != nil {
		elapsed = opts.Now().Sub(start)
	}
	recordSolve(opts, sol, elapsed, opts.Now != nil)
	if st == Optimal || st == IterationLimit {
		for i := 0; i < s.nStruct; i++ {
			sol.X[i] = s.value(i)
		}
		sol.Objective = m.Objective(sol.X)
		s.computeDuals(s.c)
		copy(sol.Duals, s.y)
		if m.maximize {
			for r := range sol.Duals {
				sol.Duals[r] = -sol.Duals[r]
			}
		}
	}
	return sol, nil
}

func newSolver(m *Model, opts Options) (*solver, error) {
	rows := len(m.rows)
	opts = opts.withDefaults(rows)
	s := &solver{
		m:       rows,
		nStruct: m.NumVars(),
		nSlack:  0,
		tol:     opts.Tol,
		opts:    opts,
		maxIt:   opts.MaxIters,
	}
	for _, r := range m.rows {
		if r.sense != EQ {
			s.nSlack++
		}
	}
	s.nTotal = s.nStruct + s.nSlack + rows // artificials allocated up front
	s.cols = make([][]centry, s.nTotal)
	s.c = make([]float64, s.nTotal)
	s.lo = make([]float64, s.nTotal)
	s.hi = make([]float64, s.nTotal)
	s.b = make([]float64, rows)

	sign := 1.0
	if m.maximize {
		sign = -1
	}
	for j := 0; j < s.nStruct; j++ {
		s.c[j] = sign * m.obj[j]
		s.lo[j], s.hi[j] = m.lo[j], m.hi[j]
	}
	// Structural columns.
	for r, rw := range m.rows {
		s.b[r] = rw.rhs
		for _, t := range rw.terms {
			s.cols[t.Var] = append(s.cols[t.Var], centry{row: r, coef: t.Coef})
		}
	}
	// Slack columns: row + slack == rhs for LE (slack in [0, inf)),
	// row - slack == rhs for GE.
	slack := s.nStruct
	for r, rw := range m.rows {
		switch rw.sense {
		case LE:
			s.cols[slack] = []centry{{row: r, coef: 1}}
		case GE:
			s.cols[slack] = []centry{{row: r, coef: -1}}
		case EQ:
			continue
		}
		s.lo[slack], s.hi[slack] = 0, Inf
		slack++
	}
	// Artificial columns get their signs fixed once the initial
	// nonbasic point is known; allocate bounds now.
	art := s.nStruct + s.nSlack
	for r := 0; r < rows; r++ {
		s.cols[art+r] = []centry{{row: r, coef: 1}} // sign patched later
		s.lo[art+r], s.hi[art+r] = 0, 0             // opened during phase 1
	}
	s.stat = make([]vstat, s.nTotal)
	s.basis = make([]int, rows)
	s.binv = make([]float64, rows*rows)
	s.xB = make([]float64, rows)
	s.xN = make([]float64, s.nTotal)
	s.y = make([]float64, rows)
	s.w = make([]float64, rows)
	s.artStart = s.nStruct + s.nSlack
	return s, nil
}

// value returns the current value of column j.
func (s *solver) value(j int) float64 {
	if s.stat[j] == basic {
		for r, bj := range s.basis {
			if bj == j {
				return s.xB[r]
			}
		}
	}
	return s.xN[j]
}

// run executes phase 1 then phase 2 and returns the final status.
func (s *solver) run() Status {
	// Initial nonbasic point: every structural/slack column at its
	// finite bound nearest zero; free columns at zero.
	for j := 0; j < s.nStruct+s.nSlack; j++ {
		switch {
		case s.lo[j] > math.Inf(-1) && (math.Abs(s.lo[j]) <= math.Abs(s.hi[j]) || math.IsInf(s.hi[j], 1)):
			s.stat[j], s.xN[j] = atLower, s.lo[j]
		case !math.IsInf(s.hi[j], 1):
			s.stat[j], s.xN[j] = atUpper, s.hi[j]
		default:
			s.stat[j], s.xN[j] = nonbasicFree, 0
		}
	}
	// Residual r = b - A x_N decides artificial signs; basis starts as
	// the artificials with identity inverse.
	resid := append([]float64(nil), s.b...)
	for j := 0; j < s.nStruct+s.nSlack; j++ {
		if !isZero(s.xN[j]) {
			for _, e := range s.cols[j] {
				resid[e.row] -= e.coef * s.xN[j]
			}
		}
	}
	art := s.nStruct + s.nSlack
	needPhase1 := false
	phase1Cost := make([]float64, s.nTotal)
	for r := 0; r < s.m; r++ {
		j := art + r
		if resid[r] < 0 {
			s.cols[j][0].coef = -1
		}
		s.basis[r] = j
		s.stat[j] = basic
		s.xB[r] = math.Abs(resid[r])
		s.hi[j] = Inf
		phase1Cost[j] = 1
		if s.xB[r] > s.tol {
			needPhase1 = true
		}
		s.binv[r*s.m+r] = 1
		if s.cols[j][0].coef < 0 {
			// Keep binv the true inverse of the basis matrix.
			s.binv[r*s.m+r] = -1
		}
	}

	if needPhase1 {
		st := s.iterate(phase1Cost, true)
		if st == IterationLimit {
			return IterationLimit
		}
		infeas := 0.0
		for r := 0; r < s.m; r++ {
			if s.basis[r] >= art {
				infeas += s.xB[r]
			}
		}
		if infeas > s.tol*float64(1+s.m) {
			return Infeasible
		}
	}
	// Close the artificials: they may remain basic at ~zero but can
	// never grow again.
	for r := 0; r < s.m; r++ {
		j := art + r
		s.hi[j] = 0
		if s.stat[j] != basic {
			s.stat[j], s.xN[j] = atLower, 0
		}
	}
	return s.iterate(s.c, false)
}

// computeDuals sets s.y = cB^T B^-1 for the given cost vector.
func (s *solver) computeDuals(cost []float64) {
	for r := range s.y {
		s.y[r] = 0
	}
	for r := 0; r < s.m; r++ {
		cb := cost[s.basis[r]]
		if isZero(cb) {
			continue
		}
		row := s.binv[r*s.m : (r+1)*s.m]
		for k := 0; k < s.m; k++ {
			s.y[k] += cb * row[k]
		}
	}
}

// reducedCost returns c_j - y . A_j.
func (s *solver) reducedCost(cost []float64, j int) float64 {
	d := cost[j]
	for _, e := range s.cols[j] {
		d -= s.y[e.row] * e.coef
	}
	return d
}

// ftran computes w = B^-1 A_j.
func (s *solver) ftran(j int) {
	for r := range s.w {
		s.w[r] = 0
	}
	for _, e := range s.cols[j] {
		col := e.row
		coef := e.coef
		for r := 0; r < s.m; r++ {
			s.w[r] += coef * s.binv[r*s.m+col]
		}
	}
}

// iterate runs simplex pivots under the given cost vector until
// optimality (returns Optimal), unboundedness, or the iteration limit.
// phase1 restricts pricing to keep artificial columns from re-entering.
func (s *solver) iterate(cost []float64, phase1 bool) Status {
	stall := 0
	const stallLimit = 400 // degenerate pivots before forcing Bland
	for {
		if s.iters >= s.maxIt {
			return IterationLimit
		}
		if s.pivots >= s.refactorEvery() {
			s.refactor()
		}
		s.computeDuals(cost)
		useBland := s.opts.Pricing == Bland || stall >= stallLimit
		enter, sigma := s.price(cost, useBland)
		if enter < 0 {
			return Optimal
		}
		s.iters++
		s.ftran(enter)
		t, leaveRow, flip, ok := s.ratioTest(enter, sigma)
		if !ok {
			if phase1 {
				// Phase-1 objective is bounded below by zero; an
				// unbounded ray here means numeric trouble. Treat as
				// stall and force Bland.
				stall = stallLimit
				continue
			}
			return Unbounded
		}
		if t <= s.tol {
			stall++
		} else {
			stall = 0
		}
		if flip {
			s.flips++
			s.applyBoundFlip(enter, sigma, t)
			continue
		}
		if t <= s.tol {
			s.degenerate++
		}
		s.pivot(enter, sigma, t, leaveRow)
	}
}

// price chooses the entering column and its direction sigma (+1 to
// increase, -1 to decrease). Returns enter = -1 at optimality.
func (s *solver) price(cost []float64, bland bool) (enter int, sigma float64) {
	enter = -1
	best := s.tol
	for j := 0; j < s.nTotal; j++ {
		st := s.stat[j]
		if st == basic || sameFloat(s.lo[j], s.hi[j]) {
			continue
		}
		if j >= s.artStart {
			// Artificials never re-enter the basis.
			continue
		}
		d := s.reducedCost(cost, j)
		var improving bool
		var dir float64
		switch st {
		case atLower:
			improving, dir = d < -s.tol, 1
		case atUpper:
			improving, dir = d > s.tol, -1
		case nonbasicFree:
			if d < -s.tol {
				improving, dir = true, 1
			} else if d > s.tol {
				improving, dir = true, -1
			}
		}
		if !improving {
			continue
		}
		if bland {
			return j, dir
		}
		if mag := math.Abs(d); mag > best {
			best, enter, sigma = mag, j, dir
		}
	}
	return enter, sigma
}

// ratioTest finds how far the entering variable can move. It returns
// the step t, the leaving row (if a basis change occurs), whether the
// move is a pure bound flip, and ok=false when the step is unbounded.
func (s *solver) ratioTest(enter int, sigma float64) (t float64, leaveRow int, flip bool, ok bool) {
	t = Inf
	leaveRow = -1
	// Entering variable's own range limits the step.
	if !math.IsInf(s.hi[enter], 1) && s.lo[enter] > math.Inf(-1) {
		t = s.hi[enter] - s.lo[enter]
		flip = true
	}
	for r := 0; r < s.m; r++ {
		wr := sigma * s.w[r]
		if math.Abs(wr) <= 1e-11 {
			continue
		}
		bj := s.basis[r]
		var lim float64
		if wr > 0 {
			// Basic value decreases toward its lower bound.
			if math.IsInf(s.lo[bj], -1) {
				continue
			}
			lim = (s.xB[r] - s.lo[bj]) / wr
		} else {
			if math.IsInf(s.hi[bj], 1) {
				continue
			}
			lim = (s.hi[bj] - s.xB[r]) / (-wr)
		}
		if lim < 0 {
			lim = 0
		}
		// Prefer the tightest limit; on near-ties keep the row with
		// the largest pivot magnitude for stability.
		if lim < t-1e-10 || (lim < t+1e-10 && leaveRow >= 0 &&
			math.Abs(s.w[r]) > math.Abs(s.w[leaveRow])) {
			t = lim
			leaveRow = r
			flip = false
		}
	}
	if math.IsInf(t, 1) {
		return 0, -1, false, false
	}
	return t, leaveRow, flip, true
}

// applyBoundFlip moves the entering variable across its range without a
// basis change.
func (s *solver) applyBoundFlip(enter int, sigma, t float64) {
	if sigma > 0 {
		s.stat[enter] = atUpper
		s.xN[enter] = s.hi[enter]
	} else {
		s.stat[enter] = atLower
		s.xN[enter] = s.lo[enter]
	}
	for r := 0; r < s.m; r++ {
		s.xB[r] -= sigma * t * s.w[r]
	}
}

// pivot swaps the entering column into the basis at leaveRow.
func (s *solver) pivot(enter int, sigma, t float64, leaveRow int) {
	leave := s.basis[leaveRow]
	// New value of the entering variable.
	newVal := s.xN[enter] + sigma*t
	// Update basic values.
	for r := 0; r < s.m; r++ {
		if r != leaveRow {
			s.xB[r] -= sigma * t * s.w[r]
		}
	}
	// Leaving variable rests at whichever bound it hit.
	if sigma*s.w[leaveRow] > 0 {
		s.stat[leave] = atLower
		s.xN[leave] = s.lo[leave]
	} else {
		s.stat[leave] = atUpper
		s.xN[leave] = s.hi[leave]
	}
	if math.IsInf(s.xN[leave], 0) {
		// A free variable leaving the basis: park at zero.
		s.stat[leave] = nonbasicFree
		s.xN[leave] = 0
	}
	s.basis[leaveRow] = enter
	s.stat[enter] = basic
	s.xB[leaveRow] = newVal
	s.pivots++
	s.pivotsTotal++

	// Rank-one update of the dense inverse: eliminate the entering
	// column from all other rows.
	pivotVal := s.w[leaveRow]
	prow := s.binv[leaveRow*s.m : (leaveRow+1)*s.m]
	inv := 1 / pivotVal
	for k := range prow {
		prow[k] *= inv
	}
	for r := 0; r < s.m; r++ {
		if r == leaveRow {
			continue
		}
		f := s.w[r]
		if isZero(f) {
			continue
		}
		row := s.binv[r*s.m : (r+1)*s.m]
		for k := range row {
			row[k] -= f * prow[k]
		}
	}
}

// refactorEvery is the pivot budget between explicit reinversions of
// the basis; the O(m^3) rebuild is amortized against m^2 updates.
func (s *solver) refactorEvery() int {
	if s.opts.RefactorEvery > 0 {
		return s.opts.RefactorEvery
	}
	if s.m < 200 {
		return 4000 // small bases barely drift; refactor rarely
	}
	return 1500
}

// refactor rebuilds the dense basis inverse from the current basis
// columns with Gauss-Jordan elimination (partial pivoting) and then
// recomputes the basic values from scratch, wiping accumulated
// floating-point drift.
func (s *solver) refactor() {
	s.pivots = 0
	m := s.m
	// mat starts as B, binv as I; row operations carry both to I, B^-1.
	mat := make([]float64, m*m)
	for r := range s.binv {
		s.binv[r] = 0
	}
	for col, bj := range s.basis {
		for _, e := range s.cols[bj] {
			mat[e.row*m+col] = e.coef
		}
		s.binv[col*m+col] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < m; r++ {
			if math.Abs(mat[r*m+col]) > math.Abs(mat[p*m+col]) {
				p = r
			}
		}
		if isZero(mat[p*m+col]) {
			// Singular basis: should not happen; keep going with the
			// stale inverse rather than crash.
			return
		}
		if p != col {
			for k := 0; k < m; k++ {
				mat[p*m+k], mat[col*m+k] = mat[col*m+k], mat[p*m+k]
				s.binv[p*m+k], s.binv[col*m+k] = s.binv[col*m+k], s.binv[p*m+k]
			}
		}
		inv := 1 / mat[col*m+col]
		for k := 0; k < m; k++ {
			mat[col*m+k] *= inv
			s.binv[col*m+k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := mat[r*m+col]
			if isZero(f) {
				continue
			}
			for k := 0; k < m; k++ {
				mat[r*m+k] -= f * mat[col*m+k]
				s.binv[r*m+k] -= f * s.binv[col*m+k]
			}
		}
	}
	s.recomputeBasics()
}

// recomputeBasics sets xB = B^-1 (b - N x_N) from authoritative
// nonbasic values.
func (s *solver) recomputeBasics() {
	resid := append([]float64(nil), s.b...)
	for j := 0; j < s.nTotal; j++ {
		if s.stat[j] == basic || isZero(s.xN[j]) {
			continue
		}
		for _, e := range s.cols[j] {
			resid[e.row] -= e.coef * s.xN[j]
		}
	}
	for r := 0; r < s.m; r++ {
		v := 0.0
		row := s.binv[r*s.m : (r+1)*s.m]
		for k := 0; k < s.m; k++ {
			v += row[k] * resid[k]
		}
		s.xB[r] = v
	}
}
