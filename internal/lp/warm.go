package lp

import "math"

// Basis is an opaque snapshot of a solver's final basis, captured with
// Options.KeepBasis and replayed with Options.Warm. It stays valid
// while the model's structure is unchanged: the in-place mutators
// (SetRHS, SetObjCoef, SetVarBound) preserve it, AddVar/AddConstr
// invalidate it (a stale Basis silently degrades to a cold solve, it
// never corrupts a result).
//
//confine:goroutine
type Basis struct {
	model         *Model
	structVersion uint64
	basis         []int
	stat          []vstat
	// artSign records the direction each artificial column had when the
	// basis was captured; the shared column arena must be re-patched to
	// the same signs for the snapshot to describe the same matrix B.
	artSign []int8
	// ws/seq identify the workspace solve that produced this basis: a
	// warm solve through the same workspace with no interleaved solve
	// reuses the live factorization instead of refactorizing.
	ws  *Workspace
	seq uint64
}

// validFor reports whether the snapshot can seed a warm solve of m.
func (b *Basis) validFor(m *Model) bool {
	return b != nil && b.model == m && b.structVersion == m.structVersion
}

// solveKind classifies a solve for the lp.* metrics and the lp.solve
// span's "kind" field.
type solveKind int

const (
	solveCold         solveKind = iota // no usable basis: two cold phases
	solveWarm                          // basis reused, recovery pivots only
	solveWarmFallback                  // warm attempt failed, restarted cold
)

func (k solveKind) String() string {
	switch k {
	case solveWarm:
		return "warm"
	case solveWarmFallback:
		return "warm-fallback"
	}
	return "cold"
}

// warmRun attempts to solve from the snapshot basis, falling back to a
// cold run (with a fresh iteration budget) when the snapshot is stale,
// numerically unusable, or classifies the model as infeasible or
// unbounded — the cold run is the arbiter for terminal statuses, so a
// warm chain can never misreport feasibility.
//
//alloc:none
func (s *solver) warmRun(m *Model, b *Basis, ws *Workspace) (Status, solveKind) {
	if !b.validFor(m) || len(b.basis) != s.m || len(b.stat) != s.nTotal {
		return s.run(), solveWarmFallback
	}
	if !s.adoptBasis(b, ws) {
		return s.run(), solveWarmFallback
	}
	var st Status
	switch {
	case s.primalInfeasibility() <= s.tol:
		// RHS unchanged or basic values still in range: the cached
		// point is primal feasible, only pricing may be off.
		st = s.iterate(s.c, false)
	case s.dualFeasible():
		// The parametric hot path: an RHS or bound edit pushed basic
		// values out of range while reduced costs stayed consistent.
		// Dual pivots restore primal feasibility, then a primal sweep
		// polishes any tolerance drift.
		st = s.dualIterate()
		if st == Optimal {
			st = s.iterate(s.c, false)
		}
	default:
		// Both primal and dual infeasible (obj and RHS both moved):
		// recovery has no anchor; restart cold.
		s.iters = 0
		return s.run(), solveWarmFallback
	}
	if st == Optimal || st == IterationLimit {
		return st, solveWarm
	}
	// Infeasible/Unbounded from a warm start can be an artifact of the
	// snapshot; confirm with a cold run before reporting.
	s.iters = 0
	return s.run(), solveWarmFallback
}

// adoptBasis installs the snapshot into the prepared solver: statuses,
// nonbasic resting values under the *current* bounds, artificial column
// signs, and a factorization of the snapshot basis (reusing the live
// one when the workspace chain allows). Returns false when the basis
// matrix is numerically singular.
func (s *solver) adoptBasis(b *Basis, ws *Workspace) bool {
	copy(s.basis[:s.m], b.basis)
	copy(s.stat[:s.nTotal], b.stat)
	for r := 0; r < s.m; r++ {
		s.cols[s.artStart+r][0].coef = float64(b.artSign[r])
	}
	for j := 0; j < s.nTotal; j++ {
		switch s.stat[j] {
		case basic:
		case atLower:
			if math.IsInf(s.lo[j], -1) {
				// A bound edit removed the side this variable rested
				// on; park it on the other side, or free at zero.
				if math.IsInf(s.hi[j], 1) {
					s.stat[j], s.xN[j] = nonbasicFree, 0
				} else {
					s.stat[j], s.xN[j] = atUpper, s.hi[j]
				}
				continue
			}
			s.xN[j] = s.lo[j]
		case atUpper:
			if math.IsInf(s.hi[j], 1) {
				if math.IsInf(s.lo[j], -1) {
					s.stat[j], s.xN[j] = nonbasicFree, 0
				} else {
					s.stat[j], s.xN[j] = atLower, s.lo[j]
				}
				continue
			}
			s.xN[j] = s.hi[j]
		case nonbasicFree:
			s.xN[j] = 0
		}
	}
	if b.ws == ws && ws.lastSeq == b.seq && ws.lastModel == b.model &&
		ws.lastVersion == b.structVersion && ws.f.m == s.m {
		// Unbroken chain: the factor already represents this basis.
	} else if !ws.f.refactorize(s.basis[:s.m], s.cols, s.mat) {
		return false
	}
	s.recomputeBasics()
	return true
}

// primalInfeasibility returns the largest bound violation among basic
// variables; <= tol means the adopted point is primal feasible.
func (s *solver) primalInfeasibility() float64 {
	worst := 0.0
	for r := 0; r < s.m; r++ {
		bj := s.basis[r]
		if d := s.lo[bj] - s.xB[r]; d > worst {
			worst = d
		}
		if d := s.xB[r] - s.hi[bj]; d > worst {
			worst = d
		}
	}
	return worst
}

// dualFeasible reports whether every nonbasic reduced cost is
// consistent with its resting bound — the precondition for dual
// simplex recovery.
func (s *solver) dualFeasible() bool {
	s.computeDuals(s.c)
	for j := 0; j < s.artStart; j++ {
		st := s.stat[j]
		if st == basic || sameFloat(s.lo[j], s.hi[j]) {
			continue
		}
		d := s.reducedCost(s.c, j)
		switch st {
		case atLower:
			if d < -s.tol {
				return false
			}
		case atUpper:
			if d > s.tol {
				return false
			}
		case nonbasicFree:
			if math.Abs(d) > s.tol {
				return false
			}
		}
	}
	return true
}

// dualPivotTol is the minimum |alpha| accepted as a dual pivot element.
const dualPivotTol = 1e-9

// dualIterate runs dual simplex pivots from a dual-feasible,
// primal-infeasible basis until primal feasibility (Optimal), proven
// primal infeasibility (Infeasible — the caller cold-confirms), or the
// iteration limit. Each pass picks the most-violated basic variable,
// prices entering candidates against row r of B^-1 (Btran of a unit
// vector), and keeps dual feasibility with the |d|/|alpha| ratio test.
func (s *solver) dualIterate() Status {
	stall := 0
	const stallLimit = 400 // degenerate dual pivots before giving up
	// Duals are maintained incrementally across pivots (y' = y + θ·ρ_r
	// with θ = d_enter/α_r, using the ρ row already in hand) instead of
	// a full cB·B⁻¹ Btran per iteration — that Btran dominated warm
	// re-solve time. A full recompute happens only at entry and after a
	// refactorization, which also wipes the incremental drift.
	s.computeDuals(s.c)
	for {
		if s.iters >= s.maxIt {
			return IterationLimit
		}
		sincePivots := s.f.pivotsSince
		s.maybeRefactor()
		if s.f.pivotsSince < sincePivots {
			s.computeDuals(s.c)
		}
		// Leaving row: most violated basic variable, and the bound it
		// must land on.
		leaveRow, leaveToUpper := -1, false
		worst := s.tol
		for r := 0; r < s.m; r++ {
			bj := s.basis[r]
			if d := s.lo[bj] - s.xB[r]; d > worst {
				worst, leaveRow, leaveToUpper = d, r, false
			}
			if d := s.xB[r] - s.hi[bj]; d > worst {
				worst, leaveRow, leaveToUpper = d, r, true
			}
		}
		if leaveRow < 0 {
			return Optimal
		}
		if stall >= stallLimit {
			// Degenerate cycling: let the caller restart cold rather
			// than spin here.
			return Infeasible
		}
		s.iters++
		// rho = e_r^T B^-1, the leaving row of the inverse.
		for i := 0; i < s.m; i++ {
			s.rho[i] = 0
		}
		s.rho[leaveRow] = 1
		s.f.btran(s.rho[:s.m], s.scr)
		bj := s.basis[leaveRow]
		target := s.lo[bj]
		leaveStat := atLower
		if leaveToUpper {
			target = s.hi[bj]
			leaveStat = atUpper
		}
		// Bound-flipping ratio pass over the FIXED leaving row: when the
		// min-ratio column saturates its span before the row reaches its
		// bound, flip it and re-price the same row — the flip leaves the
		// duals untouched, so the flipped column's eligibility sign
		// inverts and it cannot be selected again this pass, bounding
		// the pass by the column count. (Re-picking the most-violated
		// row after each flip instead lets two rows ping-pong flips
		// between each other indefinitely — a crawl this code once hit.)
		repaired := false
		for {
			enter, sigma := s.dualPrice(leaveRow, leaveToUpper)
			if enter < 0 {
				// Dual unbounded: no entering column can repair the
				// violated row — the primal is infeasible.
				return Infeasible
			}
			s.ftran(enter)
			alpha := s.w[leaveRow]
			if math.Abs(alpha) <= 1e-11 {
				// Btran/Ftran disagree badly; the factor has drifted.
				return Infeasible
			}
			t := (s.xB[leaveRow] - target) / (sigma * alpha)
			if t < 0 {
				t = 0
			}
			if !math.IsInf(s.hi[enter], 1) && s.lo[enter] > math.Inf(-1) {
				if span := s.hi[enter] - s.lo[enter]; t > span {
					s.flips++
					s.iters++
					s.applyBoundFlip(enter, sigma, span)
					// The flips may already have carried the row to its
					// bound (tolerance slack); if so, no pivot is owed.
					if s.xB[leaveRow] >= s.lo[bj]-s.tol && s.xB[leaveRow] <= s.hi[bj]+s.tol {
						repaired = true
						break
					}
					if s.iters >= s.maxIt {
						return IterationLimit
					}
					continue
				}
			}
			if t <= s.tol {
				s.degenerate++
				stall++
			} else {
				stall = 0
			}
			theta := s.reducedCost(s.c, enter) / alpha
			s.pivot(enter, sigma, t, leaveRow, leaveStat)
			for i := 0; i < s.m; i++ {
				s.y[i] += theta * s.rho[i]
			}
			break
		}
		if repaired {
			continue
		}
	}
}

// dualPrice selects the entering column for the violated leaveRow by
// the bounded-variable dual ratio test: among nonbasic columns whose
// movement pushes the leaving basic value toward its violated bound,
// minimize |d_j| / |alpha_j| so every other reduced cost keeps its
// sign. Ties prefer the larger pivot magnitude for stability.
func (s *solver) dualPrice(leaveRow int, leaveToUpper bool) (enter int, sigma float64) {
	enter = -1
	bestRatio := Inf
	bestAlpha := 0.0
	for j := 0; j < s.artStart; j++ {
		st := s.stat[j]
		if st == basic || sameFloat(s.lo[j], s.hi[j]) {
			continue
		}
		alpha := 0.0
		for _, e := range s.cols[j] {
			alpha += s.rho[e.row] * e.coef
		}
		if math.Abs(alpha) <= dualPivotTol {
			continue
		}
		// xB[leaveRow] changes by -sigma*t*alpha for a step t >= 0:
		// repairing an above-upper violation needs sigma*alpha > 0,
		// below-lower needs sigma*alpha < 0.
		var dir float64
		if leaveToUpper {
			switch st {
			case atLower:
				if alpha > dualPivotTol {
					dir = 1
				}
			case atUpper:
				if alpha < -dualPivotTol {
					dir = -1
				}
			case nonbasicFree:
				if alpha > 0 {
					dir = 1
				} else {
					dir = -1
				}
			}
		} else {
			switch st {
			case atLower:
				if alpha < -dualPivotTol {
					dir = 1
				}
			case atUpper:
				if alpha > dualPivotTol {
					dir = -1
				}
			case nonbasicFree:
				if alpha > 0 {
					dir = -1
				} else {
					dir = 1
				}
			}
		}
		if isZero(dir) {
			continue
		}
		ratio := math.Abs(s.reducedCost(s.c, j)) / math.Abs(alpha)
		if ratio < bestRatio-1e-10 ||
			(ratio < bestRatio+1e-10 && math.Abs(alpha) > math.Abs(bestAlpha)) {
			bestRatio, enter, sigma, bestAlpha = ratio, j, dir, alpha
		}
	}
	return enter, sigma
}
