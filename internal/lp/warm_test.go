package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solveWarmChain cold-solves m once through ws capturing the basis,
// then returns a re-solve closure that warm-starts from the latest
// basis after the caller's in-place mutation.
func startWarmChain(t *testing.T, m *Model, ws *Workspace) (*Solution, func() *Solution) {
	t.Helper()
	opts := Options{Workspace: ws, KeepBasis: true}
	sol, err := m.Solve(opts)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	basis := sol.Basis
	resolve := func() *Solution {
		s, err := m.Solve(Options{Workspace: ws, KeepBasis: true, Warm: basis})
		if err != nil {
			t.Fatalf("warm solve: %v", err)
		}
		if s.Basis != nil {
			basis = s.Basis
		}
		return s
	}
	return sol, resolve
}

func objClose(t *testing.T, trial int, warm, cold *Solution) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("trial %d: warm status %v, cold status %v", trial, warm.Status, cold.Status)
	}
	if cold.Status != Optimal {
		return
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Errorf("trial %d: warm objective %g, cold %g", trial, warm.Objective, cold.Objective)
	}
}

// TestWarmRHSSweepCertified is the parametric hot path: one model, one
// basis chain, a sweep of right-hand sides. Every warm result must
// carry a full KKT certificate and match a from-scratch cold solve.
func TestWarmRHSSweepCertified(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		m := randomFeasibleModel(rng, 4+rng.Intn(8), 2+rng.Intn(8))
		if trial%3 == 0 {
			m.Maximize()
		}
		// A dedicated "budget" row to perturb, like the planners'.
		ids := make([]Term, 0, m.NumVars())
		for v := 0; v < m.NumVars(); v++ {
			ids = append(ids, Term{Var: VarID(v), Coef: 1 + rng.Float64()})
		}
		budgetRow := m.MustConstr(ids, LE, 2+rng.Float64()*3)
		ws := NewWorkspace()
		_, resolve := startWarmChain(t, m, ws)
		for step := 0; step < 8; step++ {
			rhs := 0.5 + rng.Float64()*5
			if err := m.SetRHS(budgetRow, rhs); err != nil {
				t.Fatalf("SetRHS: %v", err)
			}
			warm := resolve()
			cold, err := m.Solve(Options{})
			if err != nil {
				t.Fatalf("cold reference: %v", err)
			}
			objClose(t, trial, warm, cold)
			if warm.Status == Optimal {
				if err := CheckOptimal(m, warm, 1e-6); err != nil {
					t.Errorf("trial %d step %d: warm certificate: %v", trial, step, err)
				}
			}
		}
	}
}

// TestWarmIsActuallyWarm pins that a pure RHS re-solve takes the warm
// path (Solution.Warm) and needs far fewer pivots than the cold solve
// of the same instance.
func TestWarmIsActuallyWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomFeasibleModel(rng, 12, 10)
	terms := make([]Term, 0, m.NumVars())
	for v := 0; v < m.NumVars(); v++ {
		terms = append(terms, Term{Var: VarID(v), Coef: 1})
	}
	budgetRow := m.MustConstr(terms, LE, 6)
	ws := NewWorkspace()
	_, resolve := startWarmChain(t, m, ws)
	for step := 1; step <= 6; step++ {
		if err := m.SetRHS(budgetRow, 6-0.5*float64(step)); err != nil {
			t.Fatalf("SetRHS: %v", err)
		}
		warm := resolve()
		if warm.Status != Optimal {
			t.Fatalf("step %d: status %v", step, warm.Status)
		}
		if !warm.Warm {
			t.Fatalf("step %d: re-solve did not take the warm path", step)
		}
		cold, err := m.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Pivots > 0 && warm.Pivots > cold.Pivots {
			t.Errorf("step %d: warm used %d pivots, cold only %d", step, warm.Pivots, cold.Pivots)
		}
	}
}

// TestWarmAfterBoundFlip covers the satellite edge case: a bound edit
// that makes the cached basis primal-infeasible. The warm solve must
// recover (dual pivots or fallback) and agree with a cold solve.
func TestWarmAfterBoundFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		m := randomMixedModel(rng, 3+rng.Intn(8), 2+rng.Intn(6))
		ws := NewWorkspace()
		first, resolve := startWarmChain(t, m, ws)
		if first.Status != Optimal {
			continue
		}
		// Raise a lower bound to above a variable's current optimal
		// value: its basic/resting value becomes infeasible.
		v := VarID(rng.Intn(m.NumVars()))
		lo, hi := m.Bounds(v)
		newLo := math.Min(first.X[v]+0.25*(1+rng.Float64()), hi)
		if newLo <= lo {
			newLo = math.Min(lo+0.1, hi)
		}
		if err := m.SetVarBound(v, newLo, hi); err != nil {
			t.Fatalf("SetVarBound: %v", err)
		}
		warm := resolve()
		cold, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("cold reference: %v", err)
		}
		objClose(t, trial, warm, cold)
		if warm.Status == Optimal {
			if err := CheckOptimal(m, warm, 1e-6); err != nil {
				t.Errorf("trial %d: warm certificate after bound flip: %v", trial, err)
			}
		}
	}
}

// TestWarmAfterObjChange exercises the primal-feasible / dual-infeasible
// warm case: the basis point is unchanged, only pricing moved.
func TestWarmAfterObjChange(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		m := randomFeasibleModel(rng, 4+rng.Intn(8), 2+rng.Intn(8))
		ws := NewWorkspace()
		_, resolve := startWarmChain(t, m, ws)
		v := VarID(rng.Intn(m.NumVars()))
		if err := m.SetObjCoef(v, rng.NormFloat64()); err != nil {
			t.Fatalf("SetObjCoef: %v", err)
		}
		warm := resolve()
		cold, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("cold reference: %v", err)
		}
		objClose(t, trial, warm, cold)
		if warm.Status == Optimal {
			if err := CheckOptimal(m, warm, 1e-6); err != nil {
				t.Errorf("trial %d: warm certificate after obj change: %v", trial, err)
			}
		}
	}
}

// TestWarmStaleBasisFallsBack pins that structural edits invalidate the
// basis and the solve silently degrades to a correct cold run.
func TestWarmStaleBasisFallsBack(t *testing.T) {
	m := NewModel()
	x := m.MustVar(0, 4, -1, "x")
	m.MustConstr([]Term{{x, 1}}, LE, 3)
	ws := NewWorkspace()
	sol, err := m.Solve(Options{Workspace: ws, KeepBasis: true})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v / %v", err, sol.Status)
	}
	basis := sol.Basis
	// Structural edit: the captured basis no longer describes m.
	y := m.MustVar(0, 4, -2, "y")
	m.MustConstr([]Term{{x, 1}, {y, 1}}, LE, 5)
	warm, err := m.Solve(Options{Workspace: ws, Warm: basis})
	if err != nil {
		t.Fatalf("warm-after-edit: %v", err)
	}
	if warm.Warm {
		t.Error("stale basis was reported as a warm solve")
	}
	if warm.Status != Optimal {
		t.Fatalf("status %v", warm.Status)
	}
	want := -1*3.0 - 2*2.0 // y fills to its bound... check against cold
	cold, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloat(warm.Objective, cold.Objective) && math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Errorf("warm-fallback objective %g, cold %g (sanity want about %g)", warm.Objective, cold.Objective, want)
	}
}

// TestWarmAcrossWorkspaces pins that a Basis can seed a solve through a
// *different* workspace (forcing a refactorization of the snapshot).
func TestWarmAcrossWorkspaces(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		m := randomFeasibleModel(rng, 6, 8)
		terms := []Term{{0, 1}, {1, 1}, {2, 1}}
		row := m.MustConstr(terms, LE, 4)
		ws1 := NewWorkspace()
		sol, err := m.Solve(Options{Workspace: ws1, KeepBasis: true})
		if err != nil || sol.Status != Optimal {
			t.Fatalf("cold: %v / %v", err, sol.Status)
		}
		if err := m.SetRHS(row, 2); err != nil {
			t.Fatal(err)
		}
		warm, err := m.Solve(Options{Workspace: NewWorkspace(), Warm: sol.Basis})
		if err != nil {
			t.Fatalf("warm via fresh workspace: %v", err)
		}
		cold, err := m.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		objClose(t, trial, warm, cold)
	}
}

// TestWarmIterationLimit pins the satellite behavior: a warm solve
// that exhausts MaxIters reports IterationLimit (it does not burn a
// hidden cold restart), so callers can fall back deliberately.
func TestWarmIterationLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := randomFeasibleModel(rng, 14, 14)
	terms := make([]Term, 0, m.NumVars())
	for v := 0; v < m.NumVars(); v++ {
		terms = append(terms, Term{Var: VarID(v), Coef: 1})
	}
	row := m.MustConstr(terms, LE, 8)
	ws := NewWorkspace()
	sol, err := m.Solve(Options{Workspace: ws, KeepBasis: true})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v / %v", err, sol.Status)
	}
	if err := m.SetRHS(row, 0.3); err != nil {
		t.Fatal(err)
	}
	warm, err := m.Solve(Options{Workspace: ws, Warm: sol.Basis, MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status == Optimal && warm.Iterations > 1 {
		t.Fatalf("MaxIters=1 not honored: %d iterations", warm.Iterations)
	}
	// With a sane budget the same chain succeeds.
	full, err := m.Solve(Options{Workspace: ws, Warm: sol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("recovered solve status %v", full.Status)
	}
}

// TestWarmSteadyStateZeroAlloc is the tentpole's allocation pin: once
// the chain is warm, a mutate→warm-resolve cycle through a Workspace
// must not allocate at all in the solver core.
func TestWarmSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	m := randomFeasibleModel(rng, 10, 12)
	terms := make([]Term, 0, m.NumVars())
	for v := 0; v < m.NumVars(); v++ {
		terms = append(terms, Term{Var: VarID(v), Coef: 1})
	}
	row := m.MustConstr(terms, LE, 5)
	ws := NewWorkspace()
	sol, err := m.Solve(Options{Workspace: ws, KeepBasis: true})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("cold: %v / %v", err, sol.Status)
	}
	basis := sol.Basis
	rhs := []float64{4.5, 4.0, 3.5, 3.0, 2.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	step := 0
	// Warm the chain (first warm solve may still grow buffers).
	for i := 0; i < 3; i++ {
		if err := m.SetRHS(row, rhs[step%len(rhs)]); err != nil {
			t.Fatal(err)
		}
		step++
		s, err := m.Solve(Options{Workspace: ws, KeepBasis: true, Warm: basis})
		if err != nil || s.Status != Optimal {
			t.Fatalf("warmup: %v / %v", err, s.Status)
		}
		basis = s.Basis
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := m.SetRHS(row, rhs[step%len(rhs)]); err != nil {
			t.Fatal(err)
		}
		step++
		s, err := m.Solve(Options{Workspace: ws, KeepBasis: true, Warm: basis})
		if err != nil || s.Status != Optimal {
			t.Fatalf("steady state: %v / %v", err, s.Status)
		}
		basis = s.Basis
	})
	if allocs != 0 {
		t.Errorf("steady-state warm re-solve allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestMutatorValidation covers the in-place mutators' error paths,
// including SetRHS against the -1 sentinel MustConstr returns for a
// dropped (trivially true) row.
func TestMutatorValidation(t *testing.T) {
	m := NewModel()
	x := m.MustVar(0, 1, 1, "x")
	kept := m.MustConstr([]Term{{x, 1}}, LE, 1)
	dropped := m.MustConstr([]Term{{x, 1}, {x, -1}}, LE, 1)
	if dropped != -1 {
		t.Fatalf("cancelled row index %d, want -1", dropped)
	}
	if kept != 0 {
		t.Fatalf("kept row index %d, want 0", kept)
	}
	if err := m.SetRHS(dropped, 2); err == nil {
		t.Error("SetRHS accepted the dropped-row sentinel")
	}
	if err := m.SetRHS(5, 2); err == nil {
		t.Error("SetRHS accepted an out-of-range row")
	}
	if err := m.SetRHS(kept, math.NaN()); err == nil {
		t.Error("SetRHS accepted NaN")
	}
	if err := m.SetRHS(kept, 0.5); err != nil {
		t.Errorf("SetRHS rejected a valid update: %v", err)
	}
	if !sameFloat(m.RHS(kept), 0.5) {
		t.Errorf("RHS %g after SetRHS, want 0.5", m.RHS(kept))
	}
	if err := m.SetObjCoef(VarID(9), 1); err == nil {
		t.Error("SetObjCoef accepted an unknown variable")
	}
	if err := m.SetObjCoef(x, math.Inf(1)); err == nil {
		t.Error("SetObjCoef accepted +Inf")
	}
	if err := m.SetVarBound(x, 2, 1); err == nil {
		t.Error("SetVarBound accepted lo > hi")
	}
	if err := m.SetVarBound(VarID(-1), 0, 1); err == nil {
		t.Error("SetVarBound accepted a negative variable")
	}
	v0 := m.StructVersion()
	if err := m.SetVarBound(x, 0, 2); err != nil {
		t.Errorf("SetVarBound rejected a valid update: %v", err)
	}
	if m.StructVersion() != v0 {
		t.Error("in-place mutator changed StructVersion")
	}
	m.MustVar(0, 1, 1, "y")
	if m.StructVersion() == v0 {
		t.Error("AddVar did not change StructVersion")
	}
}

// TestSetRHSPresolveEliminatedRow: a row presolve would eliminate as
// redundant still accepts SetRHS on the original model, and the update
// takes effect when it becomes binding — through both SolveWithPresolve
// and a direct warm chain.
func TestSetRHSPresolveEliminatedRow(t *testing.T) {
	m := NewModel()
	x := m.MustVar(0, 1, -1, "x") // maximize x via minimizing -x
	y := m.MustVar(0, 1, -1, "y")
	// Redundant at first: x + y <= 10 can never bind with x,y <= 1, so
	// presolve drops it from the reduced model.
	row := m.MustConstr([]Term{{x, 1}, {y, 1}}, LE, 10)
	sol, err := SolveWithPresolve(m, Options{})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("presolve solve: %v / %v", err, sol.Status)
	}
	if math.Abs(sol.Objective-(-2)) > 1e-8 {
		t.Fatalf("objective %g, want -2", sol.Objective)
	}
	// Tighten the previously-eliminated row until it binds.
	if err := m.SetRHS(row, 0.5); err != nil {
		t.Fatalf("SetRHS on presolve-eliminated row: %v", err)
	}
	sol2, err := SolveWithPresolve(m, Options{})
	if err != nil || sol2.Status != Optimal {
		t.Fatalf("re-solve: %v / %v", err, sol2.Status)
	}
	if math.Abs(sol2.Objective-(-0.5)) > 1e-8 {
		t.Errorf("objective %g after tightening, want -0.5", sol2.Objective)
	}
	// Same sweep through the warm path.
	ws := NewWorkspace()
	cold, err := m.Solve(Options{Workspace: ws, KeepBasis: true})
	if err != nil || cold.Status != Optimal {
		t.Fatalf("warm-chain cold start: %v / %v", err, cold.Status)
	}
	if err := m.SetRHS(row, 1.25); err != nil {
		t.Fatal(err)
	}
	warm, err := m.Solve(Options{Workspace: ws, Warm: cold.Basis})
	if err != nil || warm.Status != Optimal {
		t.Fatalf("warm re-solve: %v / %v", err, warm.Status)
	}
	if math.Abs(warm.Objective-(-1.25)) > 1e-8 {
		t.Errorf("warm objective %g, want -1.25", warm.Objective)
	}
}

// TestWarmMixedMutations hammers the chain with interleaved RHS, bound,
// and objective edits — including the both-infeasible fallback path —
// checking every step against a cold reference.
func TestWarmMixedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 25; trial++ {
		m := randomMixedModel(rng, 4+rng.Intn(6), 3+rng.Intn(6))
		ws := NewWorkspace()
		first, resolve := startWarmChain(t, m, ws)
		if first.Status != Optimal {
			continue
		}
		for step := 0; step < 6; step++ {
			switch rng.Intn(3) {
			case 0:
				i := rng.Intn(m.NumConstrs())
				if err := m.SetRHS(i, m.RHS(i)+rng.NormFloat64()*0.5); err != nil {
					t.Fatal(err)
				}
			case 1:
				v := VarID(rng.Intn(m.NumVars()))
				if err := m.SetObjCoef(v, rng.NormFloat64()); err != nil {
					t.Fatal(err)
				}
			default:
				v := VarID(rng.Intn(m.NumVars()))
				_, hi := m.Bounds(v)
				newLo := rng.Float64() * hi * 0.5
				if err := m.SetVarBound(v, newLo, hi); err != nil {
					t.Fatal(err)
				}
			}
			warm := resolve()
			cold, err := m.Solve(Options{})
			if err != nil {
				t.Fatalf("cold reference: %v", err)
			}
			objClose(t, trial, warm, cold)
		}
	}
}
