package lp

// Float-equality helpers: the one sanctioned home for == and != on
// floating-point values in this package, enforced by the floatcmp
// analyzer in internal/analysis. Both are exact bit comparisons, and
// deliberately so — the solver skips exactly-zero coefficients for
// sparsity (a tolerance there would silently drop small entries) and
// detects fixed variables by identical bounds. Any comparison that
// should absorb rounding error must spell out its tolerance instead
// (see Options.Tol and the checks in check.go).

// isZero reports whether x is exactly zero. NaN is not zero.
func isZero(x float64) bool { return x == 0 }

// sameFloat reports whether a and b are exactly equal, with the usual
// IEEE semantics (NaN never equals anything, -0 equals +0).
func sameFloat(a, b float64) bool { return a == b }
