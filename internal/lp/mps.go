package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadMPS parses a linear program in free-format MPS, the lingua
// franca of LP solvers, so models can move between this solver and
// CPLEX-class tools. Supported sections: NAME, OBJSENSE (MAX/MIN,
// an extension most solvers accept), ROWS, COLUMNS, RHS, RANGES,
// BOUNDS (UP, LO, FX, FR, MI, PL, BV), ENDATA. Integrality markers
// (MARKER/INTORG/INTEND) are accepted and ignored — this is an LP
// solver; the planners handle rounding.
func ReadMPS(r io.Reader) (*Model, error) {
	p := &mpsParser{
		m:        NewModel(),
		rowIdx:   map[string]int{},
		colIdx:   map[string]VarID{},
		rowSense: map[string]Sense{},
		rowTerms: map[string][]Term{},
		rowRHS:   map[string]float64{},
		rowRange: map[string]float64{},
		loSet:    map[VarID]bool{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	section := ""
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		// Section headers start in column 1 (no leading whitespace).
		if !strings.HasPrefix(raw, " ") && !strings.HasPrefix(raw, "\t") {
			fields := strings.Fields(trimmed)
			section = strings.ToUpper(fields[0])
			switch section {
			case "NAME", "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS", "ENDATA", "OBJSENSE":
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown section %q", line, section)
			}
			if section == "OBJSENSE" && len(fields) > 1 {
				if strings.ToUpper(fields[1]) == "MAX" || strings.ToUpper(fields[1]) == "MAXIMIZE" {
					p.m.Maximize()
				}
			}
			if section == "ENDATA" {
				return p.finish()
			}
			continue
		}
		fields := strings.Fields(trimmed)
		var err error
		switch section {
		case "OBJSENSE":
			if strings.ToUpper(fields[0]) == "MAX" || strings.ToUpper(fields[0]) == "MAXIMIZE" {
				p.m.Maximize()
			}
		case "ROWS":
			err = p.rowLine(fields)
		case "COLUMNS":
			err = p.columnLine(fields)
		case "RHS":
			err = p.rhsLine(fields)
		case "RANGES":
			err = p.rangeLine(fields)
		case "BOUNDS":
			err = p.boundLine(fields)
		default:
			err = fmt.Errorf("data outside a section")
		}
		if err != nil {
			return nil, fmt.Errorf("lp: mps line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p.finish()
}

type mpsParser struct {
	m        *Model
	objRow   string
	rowOrder []string
	rowIdx   map[string]int
	colIdx   map[string]VarID
	rowSense map[string]Sense
	rowTerms map[string][]Term
	rowRHS   map[string]float64
	rowRange map[string]float64
	loSet    map[VarID]bool
	inMarker bool
}

func (p *mpsParser) rowLine(f []string) error {
	if len(f) != 2 {
		return fmt.Errorf("ROWS entries need a type and a name")
	}
	name := f[1]
	if _, dup := p.rowIdx[name]; dup || name == p.objRow {
		return fmt.Errorf("duplicate row %q", name)
	}
	switch strings.ToUpper(f[0]) {
	case "N":
		if p.objRow == "" {
			p.objRow = name
		}
		// Extra free rows are legal MPS; ignore them.
		return nil
	case "L":
		p.rowSense[name] = LE
	case "G":
		p.rowSense[name] = GE
	case "E":
		p.rowSense[name] = EQ
	default:
		return fmt.Errorf("unknown row type %q", f[0])
	}
	p.rowIdx[name] = len(p.rowOrder)
	p.rowOrder = append(p.rowOrder, name)
	return nil
}

func (p *mpsParser) columnLine(f []string) error {
	if len(f) >= 3 && strings.Contains(strings.ToUpper(f[1]), "MARKER") {
		// Integrality marker pair; tolerated, ignored.
		return nil
	}
	if len(f) != 3 && len(f) != 5 {
		return fmt.Errorf("COLUMNS entries need column, row, value [, row, value]")
	}
	col := f[0]
	id, ok := p.colIdx[col]
	if !ok {
		var err error
		id, err = p.m.AddVar(0, Inf, 0, col)
		if err != nil {
			return err
		}
		p.colIdx[col] = id
	}
	for i := 1; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i+1], 64)
		if err != nil {
			return fmt.Errorf("bad coefficient %q", f[i+1])
		}
		row := f[i]
		if row == p.objRow {
			p.m.obj[id] += val
			continue
		}
		if _, ok := p.rowIdx[row]; !ok {
			return fmt.Errorf("unknown row %q", row)
		}
		p.rowTerms[row] = append(p.rowTerms[row], Term{Var: id, Coef: val})
	}
	return nil
}

func (p *mpsParser) rhsLine(f []string) error {
	if len(f) != 3 && len(f) != 5 {
		return fmt.Errorf("RHS entries need set, row, value [, row, value]")
	}
	for i := 1; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i+1], 64)
		if err != nil {
			return fmt.Errorf("bad rhs %q", f[i+1])
		}
		row := f[i]
		if row == p.objRow {
			continue // objective constant; irrelevant to the argmin
		}
		if _, ok := p.rowIdx[row]; !ok {
			return fmt.Errorf("unknown row %q", row)
		}
		p.rowRHS[row] = val
	}
	return nil
}

func (p *mpsParser) rangeLine(f []string) error {
	if len(f) != 3 && len(f) != 5 {
		return fmt.Errorf("RANGES entries need set, row, value [, row, value]")
	}
	for i := 1; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i+1], 64)
		if err != nil {
			return fmt.Errorf("bad range %q", f[i+1])
		}
		row := f[i]
		if _, ok := p.rowIdx[row]; !ok {
			return fmt.Errorf("unknown row %q", row)
		}
		p.rowRange[row] = val
	}
	return nil
}

func (p *mpsParser) boundLine(f []string) error {
	kind := strings.ToUpper(f[0])
	var col string
	var val float64
	switch kind {
	case "FR", "MI", "PL", "BV":
		if len(f) != 3 {
			return fmt.Errorf("%s bounds need set and column", kind)
		}
		col = f[2]
	default:
		if len(f) != 4 {
			return fmt.Errorf("%s bounds need set, column, value", kind)
		}
		col = f[2]
		var err error
		val, err = strconv.ParseFloat(f[3], 64)
		if err != nil {
			return fmt.Errorf("bad bound %q", f[3])
		}
	}
	id, ok := p.colIdx[col]
	if !ok {
		return fmt.Errorf("bound on unknown column %q", col)
	}
	switch kind {
	case "UP":
		p.m.hi[id] = val
		if val < 0 && !p.loSet[id] {
			// MPS convention: a negative upper bound on a default-
			// lower-bounded column opens the lower bound.
			p.m.lo[id] = math.Inf(-1)
		}
	case "LO":
		p.m.lo[id] = val
		p.loSet[id] = true
	case "FX":
		p.m.lo[id], p.m.hi[id] = val, val
	case "FR":
		p.m.lo[id], p.m.hi[id] = math.Inf(-1), Inf
	case "MI":
		p.m.lo[id] = math.Inf(-1)
	case "PL":
		p.m.hi[id] = Inf
	case "BV":
		p.m.lo[id], p.m.hi[id] = 0, 1
	default:
		return fmt.Errorf("unknown bound type %q", kind)
	}
	return nil
}

// finish materializes the accumulated rows into the model.
func (p *mpsParser) finish() (*Model, error) {
	for _, row := range p.rowOrder {
		terms := p.rowTerms[row]
		if len(terms) == 0 {
			continue // empty row: trivially satisfiable with rhs conventions
		}
		sense := p.rowSense[row]
		rhs := p.rowRHS[row]
		if err := p.m.AddConstr(terms, sense, rhs); err != nil {
			return nil, fmt.Errorf("lp: mps row %q: %w", row, err)
		}
		// RANGES split a row into two inequalities.
		if rg, ok := p.rowRange[row]; ok && !isZero(rg) {
			lo, hi, err := rangeBounds(sense, rhs, rg)
			if err != nil {
				return nil, fmt.Errorf("lp: mps row %q: %w", row, err)
			}
			switch sense {
			case LE: // row <= rhs already added; add row >= lo
				if err := p.m.AddConstr(terms, GE, lo); err != nil {
					return nil, err
				}
			case GE: // row >= rhs already added; add row <= hi
				if err := p.m.AddConstr(terms, LE, hi); err != nil {
					return nil, err
				}
			case EQ:
				// Replacing an equality with an interval needs both
				// sides; the EQ row is already there, so ranges on EQ
				// rows are rejected to avoid silently tightening.
				return nil, fmt.Errorf("ranges on E rows are not supported")
			}
		}
	}
	return p.m, nil
}

func rangeBounds(sense Sense, rhs, rg float64) (lo, hi float64, err error) {
	r := math.Abs(rg)
	switch sense {
	case LE:
		return rhs - r, rhs, nil
	case GE:
		return rhs, rhs + r, nil
	}
	return 0, 0, fmt.Errorf("unsupported range")
}

// WriteMPS serializes the model as free-format MPS. Variable names are
// sanitized (whitespace replaced); unnamed variables get xN names.
func WriteMPS(w io.Writer, m *Model, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "PROSPECTOR"
	}
	fmt.Fprintf(bw, "NAME %s\n", sanitize(name))
	if m.maximize {
		fmt.Fprintf(bw, "OBJSENSE\n    MAX\n")
	}
	fmt.Fprintf(bw, "ROWS\n N  COST\n")
	for i := range m.rows {
		letter := map[Sense]string{LE: "L", GE: "G", EQ: "E"}[m.rows[i].sense]
		fmt.Fprintf(bw, " %s  R%d\n", letter, i)
	}
	// Column names must be unique in MPS or the reader merges them;
	// duplicates and blanks get positional names.
	names := make([]string, m.NumVars())
	seen := make(map[string]bool, m.NumVars())
	for j := range names {
		name := sanitize(m.names[j])
		if name == "" || seen[name] {
			name = fmt.Sprintf("x%d", j)
		}
		for n := 0; seen[name]; n++ {
			name = fmt.Sprintf("x%d_%d", j, n)
		}
		seen[name] = true
		names[j] = name
	}
	// Column-major coefficients.
	fmt.Fprintf(bw, "COLUMNS\n")
	byCol := make([][]Term, m.NumVars())
	for i, r := range m.rows {
		for _, t := range r.terms {
			byCol[t.Var] = append(byCol[t.Var], Term{Var: VarID(i), Coef: t.Coef})
		}
	}
	for j := 0; j < m.NumVars(); j++ {
		if !isZero(m.obj[j]) {
			fmt.Fprintf(bw, "    %s  COST  %.17g\n", names[j], m.obj[j])
		}
		for _, t := range byCol[j] {
			fmt.Fprintf(bw, "    %s  R%d  %.17g\n", names[j], t.Var, t.Coef)
		}
	}
	fmt.Fprintf(bw, "RHS\n")
	for i, r := range m.rows {
		if !isZero(r.rhs) {
			fmt.Fprintf(bw, "    RHS1  R%d  %.17g\n", i, r.rhs)
		}
	}
	fmt.Fprintf(bw, "BOUNDS\n")
	for j := 0; j < m.NumVars(); j++ {
		lo, hi := m.lo[j], m.hi[j]
		switch {
		case isZero(lo) && math.IsInf(hi, 1):
			// MPS default; nothing to write.
		case sameFloat(lo, hi):
			fmt.Fprintf(bw, " FX BND1  %s  %.17g\n", names[j], lo)
		default:
			if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
				fmt.Fprintf(bw, " FR BND1  %s\n", names[j])
				continue
			}
			if math.IsInf(lo, -1) {
				fmt.Fprintf(bw, " MI BND1  %s\n", names[j])
			} else if !isZero(lo) {
				fmt.Fprintf(bw, " LO BND1  %s  %.17g\n", names[j], lo)
			}
			if !math.IsInf(hi, 1) {
				fmt.Fprintf(bw, " UP BND1  %s  %.17g\n", names[j], hi)
			}
		}
	}
	fmt.Fprintf(bw, "ENDATA\n")
	return bw.Flush()
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}
