package lp

import (
	"time"

	"prospector/internal/obs"
)

// Metric names exported by the solver when Options.Obs is set:
//
//	lp.solves                  counter, one per Solve call
//	lp.status.<status>         counter per terminal status
//	lp.iterations              counter, simplex iterations (pivots + flips)
//	lp.pivots                  counter, basis changes
//	lp.degenerate_pivots       counter, zero-step basis changes
//	lp.bound_flips             counter, nonbasic bound-to-bound moves
//	lp.solve_seconds           histogram of wall time per solve
//	lp.cold_solves             counter, solves that ran both cold phases
//	lp.warm_resolves           counter, solves served from a cached Basis
//	lp.warm_fallbacks          counter, warm attempts restarted cold
//	lp.warm_pivots             histogram, recovery pivots per warm re-solve
//	lp.warm_hit_rate           gauge, warm_resolves / (warm_resolves +
//	                           cold_solves + warm_fallbacks), kept
//	                           current per solve so end-of-run snapshots
//	                           and the live exposition agree
//	lp.presolve.runs           counter, one per SolveWithPresolve call
//	lp.presolve.rows_removed   counter, constraint rows eliminated
//	lp.presolve.vars_fixed     counter, variables pinned by reductions
//	lp.presolve.solved_outright counter, models presolve closed alone

// solveSecondsBounds buckets solve wall time from 10µs to 10s.
var solveSecondsBounds = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// warmPivotsBounds buckets recovery pivots per warm re-solve: the
// parametric hot path should live in the low buckets; mass in the high
// ones means the basis chain is not actually being reused.
var warmPivotsBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// statusCounterName precomputes the lp.status.* counter names so the
// per-solve metrics path never concatenates strings.
var statusCounterName = [...]string{
	Optimal:        "lp.status.optimal",
	Infeasible:     "lp.status.infeasible",
	Unbounded:      "lp.status.unbounded",
	IterationLimit: "lp.status.iteration-limit",
}

// statusCounter returns the precomputed counter name for st, falling
// back to a fixed name for out-of-range values.
func statusCounter(st Status) string {
	if st >= 0 && int(st) < len(statusCounterName) {
		return statusCounterName[st]
	}
	return "lp.status.invalid"
}

// recordSolve publishes one solve's statistics; no-op without a
// registry or tracer. The solve_seconds histogram is only fed when the
// caller injected a clock (timed): a solver without Options.Now has no
// wall-time signal to report, and observing zeros would skew the
// distribution. With Options.Trace (or a parent Options.Span) the solve
// additionally emits one flat "lp.solve" span carrying the outcome.
// The span's timeline is [0, 0]: traces must be byte-identical for a
// fixed seed, so wall time stays out of them — the deterministic
// iteration/pivot counts on the span are the solve-effort signal, and
// wall time lives only in the lp.solve_seconds histogram.
//
// kind partitions the solves: lp.cold_solves counts cold runs and
// warm fallbacks (which end as cold runs), lp.warm_resolves counts
// basis-reusing solves, so cold_solves + warm_resolves == solves.
func recordSolve(opts Options, sol *Solution, elapsed time.Duration, timed bool, kind solveKind) {
	if r := opts.Obs; r != nil {
		r.Counter("lp.solves").Inc()
		r.Counter(statusCounter(sol.Status)).Inc()
		r.Counter("lp.iterations").Add(int64(sol.Iterations))
		r.Counter("lp.pivots").Add(int64(sol.Pivots))
		r.Counter("lp.degenerate_pivots").Add(int64(sol.DegeneratePivots))
		r.Counter("lp.bound_flips").Add(int64(sol.BoundFlips))
		warms := r.Counter("lp.warm_resolves")
		colds := r.Counter("lp.cold_solves")
		fallbacks := r.Counter("lp.warm_fallbacks")
		switch kind {
		case solveWarm:
			warms.Inc()
			r.Histogram("lp.warm_pivots", warmPivotsBounds).Observe(float64(sol.Pivots))
		case solveWarmFallback:
			colds.Inc()
			fallbacks.Inc()
		default:
			colds.Inc()
		}
		// Derived warm-hit rate, re-published per solve instead of by an
		// end-of-run hook: the final value is what a run's last snapshot
		// sees, and intermediate values feed the live exposition. A
		// fallback counts against the rate twice (once as a cold solve,
		// once as a failed warm attempt), penalizing chains that thrash.
		if denom := warms.Value() + colds.Value() + fallbacks.Value(); denom > 0 {
			r.Gauge("lp.warm_hit_rate").Set(float64(warms.Value()) / float64(denom))
		}
		if timed {
			r.Histogram("lp.solve_seconds", solveSecondsBounds).Observe(elapsed.Seconds())
		}
	}
	if opts.Trace != nil || opts.Span != nil {
		fields := []obs.Field{
			obs.FStr("status", sol.Status.String()),
			obs.FStr("kind", kind.String()),
			obs.FInt("iterations", int64(sol.Iterations)),
			obs.FInt("pivots", int64(sol.Pivots)),
		}
		if opts.Span != nil {
			opts.Span.Span("lp.solve", 0, 0, fields...)
		} else {
			opts.Trace.Span("lp.solve", 0, 0, fields...)
		}
	}
}

// recordPresolve publishes one presolve pass's reductions; no-op when
// r is nil.
func recordPresolve(r *obs.Registry, red *reduction, solvedOutright bool) {
	if r == nil {
		return
	}
	rowsRemoved, varsFixed := 0, 0
	for _, live := range red.rowLive {
		if !live {
			rowsRemoved++
		}
	}
	for _, f := range red.fixed {
		if f {
			varsFixed++
		}
	}
	r.Counter("lp.presolve.runs").Inc()
	r.Counter("lp.presolve.rows_removed").Add(int64(rowsRemoved))
	r.Counter("lp.presolve.vars_fixed").Add(int64(varsFixed))
	if solvedOutright {
		r.Counter("lp.presolve.solved_outright").Inc()
	}
}
