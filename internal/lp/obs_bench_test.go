package lp

import (
	"fmt"
	"math/rand"
	"testing"

	"prospector/internal/obs"
)

// benchModel builds a dense-ish random LP: maximize a positive
// objective over box-bounded variables tied together by covering and
// budget rows, shaped like the planner LPs core generates.
func benchModel(rng *rand.Rand, nVars, nRows int) *Model {
	m := NewModel()
	m.Maximize()
	vars := make([]VarID, nVars)
	for i := range vars {
		vars[i] = m.MustVar(0, 1, 0.1+rng.Float64(), fmt.Sprintf("x%d", i))
	}
	for r := 0; r < nRows; r++ {
		var terms []Term
		for i, v := range vars {
			if (i+r)%3 == 0 {
				terms = append(terms, Term{Var: v, Coef: 0.5 + rng.Float64()})
			}
		}
		m.MustConstr(terms, LE, float64(len(terms))/4)
	}
	return m
}

// BenchmarkSolveObs compares uninstrumented solves against solves that
// publish lp.* metrics. The delta is the full observability cost per
// solve: a handful of counter adds plus one histogram observation.
func BenchmarkSolveObs(b *testing.B) {
	m := benchModel(rand.New(rand.NewSource(7)), 80, 50)
	run := func(b *testing.B, opts Options) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := m.Solve(opts)
			if err != nil {
				b.Fatal(err)
			}
			if sol.Status != Optimal {
				b.Fatalf("status %v", sol.Status)
			}
		}
	}
	b.Run("solve-off", func(b *testing.B) {
		run(b, Options{})
	})
	b.Run("solve-live", func(b *testing.B) {
		run(b, Options{Obs: obs.NewRegistry()})
	})
}
