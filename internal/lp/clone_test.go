package lp

import (
	"math"
	"math/rand"
	"testing"

	"prospector/internal/obs"
)

// TestCloneSolvesIdentically: a clone is the same program — cold
// solves of both sides agree on status, objective, and the solution
// vector.
func TestCloneSolvesIdentically(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		m := randomFeasibleModel(rng, 3+rng.Intn(8), 2+rng.Intn(8))
		if trial%2 == 0 {
			m.Maximize()
		}
		c := m.Clone()
		if c.StructVersion() != m.StructVersion() {
			t.Fatalf("trial %d: clone StructVersion %d, original %d", trial, c.StructVersion(), m.StructVersion())
		}
		sm, err := m.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: original solve: %v", trial, err)
		}
		sc, err := c.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: clone solve: %v", trial, err)
		}
		if sm.Status != sc.Status {
			t.Fatalf("trial %d: original status %v, clone %v", trial, sm.Status, sc.Status)
		}
		if sm.Status != Optimal {
			continue
		}
		if math.Abs(sm.Objective-sc.Objective) > 1e-9*(1+math.Abs(sm.Objective)) {
			t.Errorf("trial %d: objective %g vs clone %g", trial, sm.Objective, sc.Objective)
		}
		for i := range sm.X {
			if math.Abs(sm.X[i]-sc.X[i]) > 1e-9 {
				t.Errorf("trial %d: x[%d] %g vs clone %g", trial, i, sm.X[i], sc.X[i])
			}
		}
	}
}

// TestCloneIsIndependent: in-place and structural edits on one side
// never leak to the other.
func TestCloneIsIndependent(t *testing.T) {
	m := NewModel()
	x := m.MustVar(0, 10, 1, "x")
	y := m.MustVar(0, 10, 2, "y")
	row := m.MustConstr([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, LE, 5)

	c := m.Clone()
	if err := c.SetRHS(row, 9); err != nil {
		t.Fatal(err)
	}
	if got := m.RHS(row); got != 5 {
		t.Fatalf("clone SetRHS leaked into original: rhs %g", got)
	}
	if err := c.SetObjCoef(x, -7); err != nil {
		t.Fatal(err)
	}
	if err := c.SetVarBound(y, 1, 3); err != nil {
		t.Fatal(err)
	}
	if lo, hi := m.Bounds(y); lo != 0 || hi != 10 {
		t.Fatalf("clone SetVarBound leaked into original: [%g, %g]", lo, hi)
	}
	// Structural growth on the clone must not disturb the original's
	// rows (exact-capacity copies force append to reallocate).
	z := c.MustVar(0, 1, 0, "z")
	c.MustConstr([]Term{{Var: z, Coef: 1}}, LE, 1)
	if m.NumVars() != 2 || m.NumConstrs() != 1 {
		t.Fatalf("clone growth leaked into original: %d vars, %d rows", m.NumVars(), m.NumConstrs())
	}
	if c.StructVersion() == m.StructVersion() {
		t.Fatal("clone structural edits did not advance its StructVersion")
	}

	// And the reverse: mutating the original leaves the clone alone.
	if err := m.SetRHS(row, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.RHS(row); got != 9 {
		t.Fatalf("original SetRHS leaked into clone: rhs %g", got)
	}
}

// TestCloneBasisDoesNotTransfer: a Basis captured on the original is
// rejected (not silently reused) when warm-starting the clone — basis
// validity is pointer-keyed, so each clone starts its own chain.
func TestCloneBasisDoesNotTransfer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomFeasibleModel(rng, 6, 5)
	sol, err := m.Solve(Options{KeepBasis: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Basis == nil {
		t.Fatalf("seed solve: status %v, basis %v", sol.Status, sol.Basis)
	}
	c := m.Clone()
	// Solve the clone "warm" with the original's basis: the solver must
	// treat the stale basis as a cold start and still reach Optimal.
	reg := obs.NewRegistry()
	sc, err := c.Solve(Options{Warm: sol.Basis, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Status != Optimal {
		t.Fatalf("clone solve with foreign basis: status %v", sc.Status)
	}
	if got := reg.Counter("lp.warm_resolves").Value(); got != 0 {
		t.Fatalf("foreign basis was reused warm (%d warm resolves); basis must be pointer-keyed to its model", got)
	}
	if got := reg.Counter("lp.cold_solves").Value(); got != 1 {
		t.Fatalf("expected exactly 1 cold solve for the clone, got %d", got)
	}
}
