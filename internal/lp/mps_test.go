package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

const classicMPS = `
* Dantzig's textbook example.
NAME TEST1
OBJSENSE
    MAX
ROWS
 N  COST
 L  LIM1
 L  LIM2
 L  LIM3
COLUMNS
    X  COST  3  LIM1  1
    Y  COST  5  LIM2  2
    Y  LIM3  2
    X  LIM3  3
RHS
    RHS1  LIM1  4  LIM2  12
    RHS1  LIM3  18
ENDATA
`

func TestReadMPSClassic(t *testing.T) {
	m, err := ReadMPS(strings.NewReader(classicMPS))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVars() != 2 || m.NumConstrs() != 3 {
		t.Fatalf("vars=%d rows=%d", m.NumVars(), m.NumConstrs())
	}
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.Objective-36) > 1e-7 {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
}

func TestReadMPSBounds(t *testing.T) {
	in := `
NAME B
ROWS
 N  COST
 G  R0
COLUMNS
    A  COST  1  R0  1
    B  COST  1  R0  1
    C  COST  1  R0  1
RHS
    RHS  R0  2
BOUNDS
 LO BND  A  0.5
 UP BND  A  3
 FX BND  B  1
 FR BND  C
ENDATA
`
	m, err := ReadMPS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// min A+B+C st A+B+C >= 2, A in [0.5,3], B = 1, C free.
	// Optimum: total exactly 2 (push C down). Objective = 2.
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.Objective-2) > 1e-7 {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestReadMPSRanges(t *testing.T) {
	in := `
NAME R
ROWS
 N  COST
 L  R0
COLUMNS
    X  COST  -1  R0  1
RHS
    RHS  R0  10
RANGES
    RNG  R0  4
ENDATA
`
	// R0 becomes 6 <= x <= 10; maximize x via min -x => x = 10...
	// minimization of -x drives x to its max 10.
	m, err := ReadMPS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sol := solveOrFail(t, m, Options{})
	if math.Abs(sol.X[0]-10) > 1e-7 {
		t.Errorf("x = %g, want 10", sol.X[0])
	}
	// And the lower side binds when minimizing +x.
	in2 := strings.Replace(in, "COST  -1", "COST  1", 1)
	m2, err := ReadMPS(strings.NewReader(in2))
	if err != nil {
		t.Fatal(err)
	}
	sol2 := solveOrFail(t, m2, Options{})
	if math.Abs(sol2.X[0]-6) > 1e-7 {
		t.Errorf("x = %g, want 6", sol2.X[0])
	}
}

func TestReadMPSErrors(t *testing.T) {
	cases := []string{
		"GARBAGE\n",
		"ROWS\n Z  R0\nENDATA\n",
		"ROWS\n L  R0\nCOLUMNS\n    X  R1  1\nENDATA\n",
		"ROWS\n L  R0\nCOLUMNS\n    X  R0  abc\nENDATA\n",
		"ROWS\n N  C\n E  R0\nCOLUMNS\n    X  R0  1\nRHS\n    S  R0  1\nRANGES\n    G  R0  2\nENDATA\n",
	}
	for _, in := range cases {
		if _, err := ReadMPS(strings.NewReader(in)); err == nil {
			t.Errorf("ReadMPS accepted %q", in)
		}
	}
}

func TestMPSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		m := randomFeasibleModel(rng, 4+rng.Intn(6), 2+rng.Intn(6))
		if trial%2 == 0 {
			m.Maximize()
		}
		want, err := m.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteMPS(&buf, m, "trip"); err != nil {
			t.Fatal(err)
		}
		back, err := ReadMPS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: re-read: %v\n%s", trial, err, buf.String())
		}
		got, err := back.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want.Status != got.Status {
			t.Fatalf("trial %d: status %v vs %v", trial, want.Status, got.Status)
		}
		if want.Status == Optimal &&
			math.Abs(want.Objective-got.Objective) > 1e-6*(1+math.Abs(want.Objective)) {
			t.Errorf("trial %d: objective %g vs %g", trial, want.Objective, got.Objective)
		}
	}
}

func TestWriteMPSSections(t *testing.T) {
	m := NewModel()
	m.Maximize()
	x := m.MustVar(-1, 5, 2, "a var")
	m.MustConstr([]Term{{x, 1}}, LE, 3)
	var buf bytes.Buffer
	if err := WriteMPS(&buf, m, "demo model"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NAME demo_model", "OBJSENSE", "MAX", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA", "a_var"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReadMPSNeverPanics(t *testing.T) {
	// Corrupt MPS inputs must produce errors, not panics.
	rng := rand.New(rand.NewSource(93))
	var good bytes.Buffer
	m := randomFeasibleModel(rng, 5, 4)
	if err := WriteMPS(&good, m, "fuzz"); err != nil {
		t.Fatal(err)
	}
	base := good.Bytes()
	for trial := 0; trial < 2000; trial++ {
		data := append([]byte(nil), base...)
		for mut := 0; mut < 1+rng.Intn(6); mut++ {
			switch rng.Intn(3) {
			case 0:
				data[rng.Intn(len(data))] = byte(rng.Intn(256))
			case 1:
				cut := rng.Intn(len(data))
				data = data[:cut]
				if len(data) == 0 {
					data = []byte{' '}
				}
			case 2:
				pos := rng.Intn(len(data))
				data = append(data[:pos], append([]byte("\nROWS\n"), data[pos:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ReadMPS panicked on %q: %v", data, r)
				}
			}()
			_, _ = ReadMPS(bytes.NewReader(data))
		}()
	}
}
