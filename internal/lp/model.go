// Package lp is a self-contained linear programming toolkit built for
// the PROSPECTOR planners: a model builder, a two-phase revised simplex
// solver with bounded variables, and optimality-certificate checking.
//
// The paper solved its programs with ILOG CPLEX; no LP solver exists in
// the Go standard library, so this package substitutes a from-scratch
// implementation. The planners' LPs are pure minimization problems with
// box-bounded variables (0 <= x <= u) and sparse inequality rows, which
// is exactly the shape this solver is tuned for: bounds are handled
// implicitly (no extra rows), columns are stored sparse, and the basis
// inverse is kept dense.
package lp

import (
	"fmt"
	"math"
)

// VarID names a variable within a Model.
type VarID int

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // <=
	GE              // >=
	EQ              // ==
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Term is one coefficient of a constraint row.
type Term struct {
	Var  VarID
	Coef float64
}

// Inf is the bound used for unbounded variables.
var Inf = math.Inf(1)

// Model is a linear program under construction. Objective sense is
// minimization; use Maximize to flip. The zero value is an empty model
// ready for use.
type Model struct {
	obj      []float64
	lo, hi   []float64
	names    []string
	rows     []row
	maximize bool
	// structVersion counts structural edits (new variables or rows).
	// A Basis captured from a solve is only reusable while the version
	// is unchanged; the in-place mutators (SetRHS, SetObjCoef,
	// SetVarBound) deliberately leave it alone.
	structVersion uint64
}

type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// Maximize switches the objective sense to maximization. Solutions
// still report the objective in the caller's sense.
func (m *Model) Maximize() { m.maximize = true }

// AddVar adds a variable with bounds [lo, hi] and the given objective
// coefficient. Use lp.Inf / -lp.Inf for unbounded sides. name is kept
// for diagnostics only and may be empty.
func (m *Model) AddVar(lo, hi, obj float64, name string) (VarID, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsNaN(obj) {
		return -1, fmt.Errorf("lp: NaN in variable %q", name)
	}
	if lo > hi {
		return -1, fmt.Errorf("lp: variable %q has lo %g > hi %g", name, lo, hi)
	}
	id := VarID(len(m.obj))
	m.obj = append(m.obj, obj)
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.names = append(m.names, name)
	m.structVersion++
	return id, nil
}

// MustVar is AddVar for statically valid arguments.
func (m *Model) MustVar(lo, hi, obj float64, name string) VarID {
	id, err := m.AddVar(lo, hi, obj, name)
	if err != nil {
		panic(err)
	}
	return id
}

// AddConstr adds the row sum(terms) sense rhs. Terms referencing the
// same variable are summed. Empty rows are rejected.
func (m *Model) AddConstr(terms []Term, sense Sense, rhs float64) error {
	if len(terms) == 0 {
		return fmt.Errorf("lp: empty constraint row")
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: constraint rhs %g", rhs)
	}
	merged := make(map[VarID]float64, len(terms))
	order := make([]VarID, 0, len(terms))
	for _, t := range terms {
		if t.Var < 0 || int(t.Var) >= len(m.obj) {
			return fmt.Errorf("lp: constraint references unknown variable %d", t.Var)
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			return fmt.Errorf("lp: constraint coefficient %g on variable %d", t.Coef, t.Var)
		}
		if _, seen := merged[t.Var]; !seen {
			order = append(order, t.Var)
		}
		merged[t.Var] += t.Coef
	}
	clean := make([]Term, 0, len(order))
	for _, v := range order {
		if !isZero(merged[v]) {
			clean = append(clean, Term{Var: v, Coef: merged[v]})
		}
	}
	if len(clean) == 0 {
		// All coefficients cancelled: the row is 0 sense rhs. Either
		// trivially true or trivially false.
		violated := false
		switch sense {
		case LE:
			violated = rhs < 0
		case GE:
			violated = rhs > 0
		case EQ:
			violated = !isZero(rhs)
		}
		if violated {
			return fmt.Errorf("lp: constraint with zero row is infeasible (0 %v %g)", sense, rhs)
		}
		return nil
	}
	m.rows = append(m.rows, row{terms: clean, sense: sense, rhs: rhs})
	m.structVersion++
	return nil
}

// MustConstr is AddConstr for statically valid arguments. It returns
// the index of the retained row (usable with SetRHS), or -1 when the
// row cancelled to a trivially true constraint and was dropped.
func (m *Model) MustConstr(terms []Term, sense Sense, rhs float64) int {
	before := len(m.rows)
	if err := m.AddConstr(terms, sense, rhs); err != nil {
		panic(err)
	}
	if len(m.rows) == before {
		return -1
	}
	return before
}

// SetRHS replaces the right-hand side of retained row i in place. The
// constraint matrix is untouched, so a Basis captured from a previous
// solve stays valid and the next warm solve only has to repair primal
// feasibility. Row indices are the values returned by MustConstr.
func (m *Model) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(m.rows) {
		return fmt.Errorf("lp: SetRHS row %d out of range [0,%d)", i, len(m.rows))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: SetRHS rhs %g", rhs)
	}
	m.rows[i].rhs = rhs
	return nil
}

// RHS returns the right-hand side of retained row i.
func (m *Model) RHS(i int) float64 { return m.rows[i].rhs }

// SetObjCoef replaces a variable's objective coefficient in place (in
// the caller's declared sense, like AddVar). Basis-preserving: a warm
// solve after an objective edit re-prices from the cached basis.
func (m *Model) SetObjCoef(v VarID, obj float64) error {
	if v < 0 || int(v) >= len(m.obj) {
		return fmt.Errorf("lp: SetObjCoef unknown variable %d", v)
	}
	if math.IsNaN(obj) || math.IsInf(obj, 0) {
		return fmt.Errorf("lp: SetObjCoef coefficient %g on variable %d", obj, v)
	}
	m.obj[v] = obj
	return nil
}

// SetVarBound replaces a variable's bounds in place. Basis-preserving:
// if the edit makes the cached basis primal-infeasible, the next warm
// solve recovers with dual pivots instead of restarting cold.
func (m *Model) SetVarBound(v VarID, lo, hi float64) error {
	if v < 0 || int(v) >= len(m.obj) {
		return fmt.Errorf("lp: SetVarBound unknown variable %d", v)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return fmt.Errorf("lp: SetVarBound NaN on variable %d", v)
	}
	if lo > hi {
		return fmt.Errorf("lp: SetVarBound variable %d has lo %g > hi %g", v, lo, hi)
	}
	m.lo[v], m.hi[v] = lo, hi
	return nil
}

// StructVersion identifies the model's structure (variable and row
// count history). In-place mutators do not change it; AddVar and
// AddConstr do, invalidating any captured Basis.
func (m *Model) StructVersion() uint64 { return m.structVersion }

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstrs returns the number of (retained) constraint rows.
func (m *Model) NumConstrs() int { return len(m.rows) }

// Name returns the diagnostic name of a variable.
func (m *Model) Name(v VarID) string { return m.names[v] }

// Bounds returns the bounds of a variable.
func (m *Model) Bounds(v VarID) (lo, hi float64) { return m.lo[v], m.hi[v] }

// Objective evaluates the model objective (in the caller's sense) at x.
func (m *Model) Objective(x []float64) float64 {
	z := 0.0
	for i, c := range m.obj {
		z += c * x[i]
	}
	return z
}

// Violation returns the largest constraint or bound violation of x; a
// feasible point has Violation <= tol for the solver's tolerance.
func (m *Model) Violation(x []float64) float64 {
	worst := 0.0
	for i := range m.obj {
		if d := m.lo[i] - x[i]; d > worst {
			worst = d
		}
		if d := x[i] - m.hi[i]; d > worst {
			worst = d
		}
	}
	for _, r := range m.rows {
		lhs := 0.0
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		var d float64
		switch r.sense {
		case LE:
			d = lhs - r.rhs
		case GE:
			d = r.rhs - lhs
		case EQ:
			d = math.Abs(lhs - r.rhs)
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
