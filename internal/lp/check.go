package lp

import (
	"fmt"
	"math"
)

// CheckOptimal verifies that sol is an optimal solution of m by
// checking the full KKT certificate: primal feasibility, dual
// feasibility (correct dual signs per row sense), complementary
// slackness, and stationarity of every variable's reduced cost against
// its bound status. A nil return proves optimality up to tol without
// trusting the solver that produced the solution.
func CheckOptimal(m *Model, sol *Solution, tol float64) error {
	if sol.Status != Optimal {
		return fmt.Errorf("lp: solution status is %v, not optimal", sol.Status)
	}
	if len(sol.X) != m.NumVars() {
		return fmt.Errorf("lp: solution has %d values for %d variables", len(sol.X), m.NumVars())
	}
	if len(sol.Duals) != m.NumConstrs() {
		return fmt.Errorf("lp: solution has %d duals for %d rows", len(sol.Duals), m.NumConstrs())
	}
	if v := m.Violation(sol.X); v > tol {
		return fmt.Errorf("lp: primal infeasible by %g", v)
	}
	// Work in minimization form; Solve reports duals in the model's
	// declared sense, so flip them back alongside the objective.
	sign := 1.0
	if m.maximize {
		sign = -1
	}
	y := make([]float64, len(sol.Duals))
	for i, d := range sol.Duals {
		y[i] = sign * d
	}
	// Dual feasibility and complementary slackness per row.
	for i, r := range m.rows {
		lhs := 0.0
		scale := 1.0
		for _, t := range r.terms {
			lhs += t.Coef * sol.X[t.Var]
			scale += math.Abs(t.Coef)
		}
		slack := r.rhs - lhs
		rtol := tol * scale
		switch r.sense {
		case LE:
			if y[i] > rtol {
				return fmt.Errorf("lp: row %d (<=) has dual %g > 0", i, y[i])
			}
			if slack > rtol && math.Abs(y[i]) > rtol {
				return fmt.Errorf("lp: row %d slack %g but dual %g (complementary slackness)", i, slack, y[i])
			}
		case GE:
			if y[i] < -rtol {
				return fmt.Errorf("lp: row %d (>=) has dual %g < 0", i, y[i])
			}
			if -slack > rtol && math.Abs(y[i]) > rtol {
				return fmt.Errorf("lp: row %d surplus %g but dual %g (complementary slackness)", i, -slack, y[i])
			}
		}
	}
	// Stationarity: reduced costs must respect each variable's bound
	// status.
	red := make([]float64, m.NumVars())
	rscale := make([]float64, m.NumVars())
	for j := range red {
		red[j] = sign * m.obj[j]
		rscale[j] = 1 + math.Abs(m.obj[j])
	}
	for i, r := range m.rows {
		for _, t := range r.terms {
			red[t.Var] -= y[i] * t.Coef
			rscale[t.Var] += math.Abs(y[i] * t.Coef)
		}
	}
	for j := range red {
		jt := tol * rscale[j]
		atLo := sol.X[j] <= m.lo[j]+jt
		atHi := sol.X[j] >= m.hi[j]-jt
		switch {
		case atLo && atHi:
			// Fixed or tiny range: any reduced cost is fine.
		case atLo:
			if red[j] < -jt {
				return fmt.Errorf("lp: var %d (%s) at lower bound with reduced cost %g < 0",
					j, m.names[j], red[j])
			}
		case atHi:
			if red[j] > jt {
				return fmt.Errorf("lp: var %d (%s) at upper bound with reduced cost %g > 0",
					j, m.names[j], red[j])
			}
		default:
			if math.Abs(red[j]) > jt {
				return fmt.Errorf("lp: var %d (%s) strictly between bounds with reduced cost %g != 0",
					j, m.names[j], red[j])
			}
		}
	}
	return nil
}
