package lp

import (
	"fmt"
	"math"
)

// Presolve reductions shrink a model before the simplex runs:
//
//   - fixed variables (lo == hi) are substituted into every row;
//   - singleton rows (one variable) become bound tightenings;
//   - redundant rows (satisfied at the variables' worst bounds) are
//     dropped;
//   - forcing rows (only satisfiable at the variables' best bounds)
//     fix all their variables;
//
// iterated to a fixpoint. The planners' programs respond well: chain
// and proof rows collapse once bandwidth bounds force a z variable.
//
// SolveWithPresolve applies the reductions, solves the reduced model,
// and maps the solution back. Dual values are not reconstructed
// (Solution.Duals is nil); callers needing the KKT certificate should
// use Model.Solve directly.
func SolveWithPresolve(m *Model, opts Options) (*Solution, error) {
	red, err := newReduction(m)
	if err != nil {
		return nil, err
	}
	status := red.run()
	switch status {
	case Infeasible:
		recordPresolve(opts.Obs, red, false)
		return &Solution{Status: Infeasible}, nil
	case Optimal:
		// Everything fixed by presolve alone.
		recordPresolve(opts.Obs, red, true)
		x := red.fullSolution(nil)
		if v := m.Violation(x); v > 1e-6 {
			return &Solution{Status: Infeasible}, nil
		}
		return &Solution{Status: Optimal, Objective: m.Objective(x), X: x}, nil
	}
	recordPresolve(opts.Obs, red, false)
	reduced, keepVars := red.buildReduced()
	// The reduced model is a fresh object with its own variable space:
	// a Basis or Workspace chained to the original model cannot seed or
	// capture anything meaningful here.
	opts.Warm, opts.KeepBasis, opts.Workspace = nil, false, nil
	sol, err := reduced.Solve(opts)
	if err != nil {
		return nil, err
	}
	out := &Solution{
		Status:           sol.Status,
		Iterations:       sol.Iterations,
		Pivots:           sol.Pivots,
		DegeneratePivots: sol.DegeneratePivots,
		BoundFlips:       sol.BoundFlips,
	}
	if sol.Status == Optimal || sol.Status == IterationLimit {
		sub := make(map[int]float64, len(keepVars))
		for rj, oj := range keepVars {
			sub[oj] = sol.X[rj]
		}
		out.X = red.fullSolution(sub)
		out.Objective = m.Objective(out.X)
	}
	return out, nil
}

// reduction is the working state of one presolve pass.
type reduction struct {
	m      *Model
	lo, hi []float64
	fixed  []bool
	// live rows: terms filtered of fixed vars, rhs adjusted.
	rows    []row
	rowLive []bool
}

func newReduction(m *Model) (*reduction, error) {
	r := &reduction{
		m:       m,
		lo:      append([]float64(nil), m.lo...),
		hi:      append([]float64(nil), m.hi...),
		fixed:   make([]bool, m.NumVars()),
		rowLive: make([]bool, len(m.rows)),
	}
	r.rows = make([]row, len(m.rows))
	for i, rw := range m.rows {
		r.rows[i] = row{terms: append([]Term(nil), rw.terms...), sense: rw.sense, rhs: rw.rhs}
		r.rowLive[i] = true
	}
	return r, nil
}

const presolveTol = 1e-9

// run iterates reductions; returns Infeasible, Optimal (all variables
// fixed), or IterationLimit meaning "reduced model remains" (the code
// reuses the Status type for its three-way result).
func (r *reduction) run() Status {
	for changed := true; changed; {
		changed = false
		// Fix variables with collapsed bounds and substitute.
		for j := range r.fixed {
			if r.fixed[j] {
				continue
			}
			if r.lo[j] > r.hi[j]+presolveTol {
				return Infeasible
			}
			if r.hi[j]-r.lo[j] <= presolveTol {
				r.fixVar(j, (r.lo[j]+r.hi[j])/2)
				changed = true
			}
		}
		for i := range r.rows {
			if !r.rowLive[i] {
				continue
			}
			switch r.reduceRow(i) {
			case Infeasible:
				return Infeasible
			case Optimal:
				changed = true
			}
		}
	}
	for j := range r.fixed {
		if !r.fixed[j] {
			return IterationLimit // variables remain: solve reduced model
		}
	}
	return Optimal
}

// fixVar pins variable j at v and folds it into every row.
func (r *reduction) fixVar(j int, v float64) {
	r.fixed[j] = true
	r.lo[j], r.hi[j] = v, v
	for i := range r.rows {
		if !r.rowLive[i] {
			continue
		}
		terms := r.rows[i].terms
		for ti := 0; ti < len(terms); {
			if int(terms[ti].Var) == j {
				r.rows[i].rhs -= terms[ti].Coef * v
				terms[ti] = terms[len(terms)-1]
				terms = terms[:len(terms)-1]
			} else {
				ti++
			}
		}
		r.rows[i].terms = terms
	}
}

// reduceRow applies singleton/redundant/forcing logic to live row i.
// Returns Optimal when it changed something, IterationLimit when not,
// Infeasible on a proven contradiction.
func (r *reduction) reduceRow(i int) Status {
	rw := &r.rows[i]
	if len(rw.terms) == 0 {
		ok := true
		switch rw.sense {
		case LE:
			ok = rw.rhs >= -presolveTol
		case GE:
			ok = rw.rhs <= presolveTol
		case EQ:
			ok = math.Abs(rw.rhs) <= presolveTol
		}
		if !ok {
			return Infeasible
		}
		r.rowLive[i] = false
		return Optimal
	}
	if len(rw.terms) == 1 {
		return r.singleton(i)
	}
	// Activity bounds.
	minAct, maxAct := 0.0, 0.0
	for _, t := range rw.terms {
		l, h := r.lo[t.Var], r.hi[t.Var]
		if t.Coef >= 0 {
			minAct += t.Coef * l
			maxAct += t.Coef * h
		} else {
			minAct += t.Coef * h
			maxAct += t.Coef * l
		}
	}
	scale := 1 + math.Abs(rw.rhs)
	switch rw.sense {
	case LE:
		if minAct > rw.rhs+presolveTol*scale {
			return Infeasible
		}
		if !math.IsInf(maxAct, 1) && maxAct <= rw.rhs+presolveTol*scale {
			r.rowLive[i] = false // redundant
			return Optimal
		}
		if math.Abs(minAct-rw.rhs) <= presolveTol*scale {
			// Forcing: every variable pinned at its activity-minimizing bound.
			r.forceRow(i, true)
			return Optimal
		}
	case GE:
		if maxAct < rw.rhs-presolveTol*scale {
			return Infeasible
		}
		if !math.IsInf(minAct, -1) && minAct >= rw.rhs-presolveTol*scale {
			r.rowLive[i] = false
			return Optimal
		}
		if math.Abs(maxAct-rw.rhs) <= presolveTol*scale {
			r.forceRow(i, false)
			return Optimal
		}
	case EQ:
		if minAct > rw.rhs+presolveTol*scale || maxAct < rw.rhs-presolveTol*scale {
			return Infeasible
		}
		if math.Abs(minAct-rw.rhs) <= presolveTol*scale && math.Abs(maxAct-rw.rhs) <= presolveTol*scale {
			r.rowLive[i] = false
			return Optimal
		}
	}
	return IterationLimit
}

// singleton turns a one-variable row into a bound and removes it.
func (r *reduction) singleton(i int) Status {
	rw := &r.rows[i]
	t := rw.terms[0]
	if isZero(t.Coef) {
		rw.terms = nil
		return Optimal
	}
	bound := rw.rhs / t.Coef
	sense := rw.sense
	if t.Coef < 0 {
		switch sense {
		case LE:
			sense = GE
		case GE:
			sense = LE
		}
	}
	j := t.Var
	switch sense {
	case LE:
		if bound < r.hi[j] {
			r.hi[j] = bound
		}
	case GE:
		if bound > r.lo[j] {
			r.lo[j] = bound
		}
	case EQ:
		if bound < r.lo[j]-presolveTol || bound > r.hi[j]+presolveTol {
			return Infeasible
		}
		r.lo[j], r.hi[j] = bound, bound
	}
	if r.lo[j] > r.hi[j]+presolveTol {
		return Infeasible
	}
	r.rowLive[i] = false
	return Optimal
}

// forceRow pins every variable of row i at its activity-extreme bound.
func (r *reduction) forceRow(i int, toMin bool) {
	for _, t := range r.rows[i].terms {
		atLo := t.Coef >= 0
		if !toMin {
			atLo = !atLo
		}
		if atLo {
			r.hi[t.Var] = r.lo[t.Var]
		} else {
			r.lo[t.Var] = r.hi[t.Var]
		}
	}
	r.rowLive[i] = false
}

// buildReduced materializes the remaining problem, returning the new
// model and the original index of each kept variable.
func (r *reduction) buildReduced() (*Model, []int) {
	red := NewModel()
	red.maximize = r.m.maximize
	var keep []int
	newID := make([]VarID, r.m.NumVars())
	for j := range newID {
		newID[j] = -1
	}
	for j := 0; j < r.m.NumVars(); j++ {
		if r.fixed[j] {
			continue
		}
		id := red.MustVar(r.lo[j], r.hi[j], r.m.obj[j], r.m.names[j])
		newID[j] = id
		keep = append(keep, j)
	}
	for i, rw := range r.rows {
		if !r.rowLive[i] || len(rw.terms) == 0 {
			continue
		}
		terms := make([]Term, 0, len(rw.terms))
		for _, t := range rw.terms {
			terms = append(terms, Term{Var: newID[t.Var], Coef: t.Coef})
		}
		red.MustConstr(terms, rw.sense, rw.rhs)
	}
	return red, keep
}

// fullSolution assembles the original-space solution: fixed variables
// at their pinned values, kept variables from sub (original index ->
// value); sub may be nil when everything was fixed.
func (r *reduction) fullSolution(sub map[int]float64) []float64 {
	x := make([]float64, r.m.NumVars())
	for j := range x {
		if r.fixed[j] {
			x[j] = r.lo[j]
			continue
		}
		if v, ok := sub[j]; ok {
			x[j] = v
			continue
		}
		// Unconstrained leftover (possible only when presolve fixed
		// everything else): rest at the bound nearest zero.
		switch {
		case r.lo[j] > math.Inf(-1) && r.lo[j] >= 0:
			x[j] = r.lo[j]
		case !math.IsInf(r.hi[j], 1) && r.hi[j] <= 0:
			x[j] = r.hi[j]
		default:
			x[j] = 0
		}
	}
	return x
}

// String helps debugging reductions.
func (r *reduction) String() string {
	liveRows, fixedVars := 0, 0
	for _, l := range r.rowLive {
		if l {
			liveRows++
		}
	}
	for _, f := range r.fixed {
		if f {
			fixedVars++
		}
	}
	return fmt.Sprintf("reduction{rows %d->%d vars %d->%d}",
		len(r.rows), liveRows, r.m.NumVars(), r.m.NumVars()-fixedVars)
}
