// Package energy models the communication energy costs of a sensor
// network in the style of Crossbow MICA2 motes, following Section 2 of
// Silberstein et al., "A Sampling-Based Approach to Optimizing Top-k
// Queries in Sensor Networks" (ICDE 2006).
//
// The total energy spent sending and receiving a unicast message with w
// bytes of content is Cm + Cb*w, where Cm is the per-message cost (radio
// handshake plus headers of a reliable protocol) and Cb the per-byte
// cost. The defining property, which all of the paper's results depend
// on, is that Cm is large compared with the cost of one value
// (Cb*BytesPerValue): merely contacting a node is expensive regardless
// of how little it transmits.
package energy

import "fmt"

// Model holds the parameters of the communication cost model. All costs
// are in millijoules (mJ). The zero value is not useful; use DefaultModel
// or fill in every field.
type Model struct {
	// PerMessage (Cm) is the fixed cost of one unicast message,
	// covering the sender/receiver handshake of the reliable protocol
	// and the message header. Charged once per message, shared by
	// sender and receiver.
	PerMessage float64
	// PerByte (Cb) is the combined send+receive cost of one byte of
	// message content.
	PerByte float64
	// BytesPerValue is the encoded size of one sensor reading.
	BytesPerValue int
	// BytesPerRequest is the encoded size of a mop-up request triple
	// (count, low bound, high bound) used by exact second phases.
	BytesPerRequest int
	// TriggerFraction scales PerMessage for the broadcast
	// "re-execute" trigger of a subsequent distribution phase: a
	// broadcast has no per-receiver handshake, so it is cheaper than a
	// unicast. One trigger broadcast is charged per internal node that
	// forwards the trigger.
	TriggerFraction float64
}

// DefaultModel returns the cost model used throughout the reproduction.
//
// The MICA2 specification table in the paper is partially illegible in
// the available text, so the constants are re-derived from the MICA2
// datasheet the paper cites: transmit ~81 mW (27 mA at 3 V), receive
// ~30 mW (10 mA), effective radio throughput ~2400 bytes/sec (38.4
// kbaud Manchester-encoded), giving Cb = (81+30)/2400 ~= 0.046 mJ per
// byte of content sent and received. A reading is carried as 4 bytes
// (node id + value). The per-message cost covers the reliable
// protocol's handshake plus headers (~26 byte-equivalents), so Cm is
// high compared with one value — the property that motivates
// approximate plans — while the per-value cost remains substantial
// enough that local filtering pays, as in the paper's Figure 5.
func DefaultModel() Model {
	return Model{
		PerMessage:      1.2,
		PerByte:         0.046,
		BytesPerValue:   4,
		BytesPerRequest: 8,
		TriggerFraction: 0.25,
	}
}

// PerValue returns the cost of carrying one sensor value across one
// link, excluding the per-message overhead.
func (m Model) PerValue() float64 { return m.PerByte * float64(m.BytesPerValue) }

// TxFraction is the sender's share of a link cost, from the MICA2
// power draw ratio (transmit ~81 mW vs receive ~30 mW). The
// discrete-event simulator uses it to split each message's combined
// cost between the two radios.
const TxFraction = 81.0 / (81.0 + 30.0)

// TxShare returns the sender's part of a combined link cost.
//
//unit:cost=mJ
func (m Model) TxShare(cost float64) float64 { return cost * TxFraction }

// RxShare returns the receiver's part of a combined link cost.
//
//unit:cost=mJ
func (m Model) RxShare(cost float64) float64 { return cost * (1 - TxFraction) }

// Unicast returns the total cost of one unicast message carrying
// nValues sensor readings plus extraBytes of other content.
//
//unit:nValues=val extraBytes=B
func (m Model) Unicast(nValues, extraBytes int) float64 {
	return m.PerMessage + m.PerByte*float64(nValues*m.BytesPerValue+extraBytes)
}

// Trigger returns the cost of one broadcast trigger message used to
// start a subsequent collection phase.
func (m Model) Trigger() float64 { return m.PerMessage * m.TriggerFraction }

// Request returns the cost of one mop-up request message.
func (m Model) Request() float64 {
	return m.PerMessage + m.PerByte*float64(m.BytesPerRequest)
}

// Validate reports an error if the model's parameters are not usable.
func (m Model) Validate() error {
	switch {
	case m.PerMessage <= 0:
		return fmt.Errorf("energy: PerMessage must be positive, got %g", m.PerMessage)
	case m.PerByte <= 0:
		return fmt.Errorf("energy: PerByte must be positive, got %g", m.PerByte)
	case m.BytesPerValue <= 0:
		return fmt.Errorf("energy: BytesPerValue must be positive, got %d", m.BytesPerValue)
	case m.BytesPerRequest < 0:
		return fmt.Errorf("energy: BytesPerRequest must be non-negative, got %d", m.BytesPerRequest)
	case m.TriggerFraction < 0 || m.TriggerFraction > 1:
		return fmt.Errorf("energy: TriggerFraction must be in [0,1], got %g", m.TriggerFraction)
	}
	return nil
}

// Ledger accumulates energy spending, broken down by category, during
// plan execution. The zero value is an empty ledger ready to use.
type Ledger struct {
	// Collection is energy spent moving values up the tree.
	Collection float64
	// Trigger is energy spent broadcasting re-execute triggers.
	Trigger float64
	// Requests is energy spent on mop-up request messages.
	Requests float64
	// Install is energy spent unicasting subplans during the initial
	// distribution phase.
	Install float64
	// Messages counts every message sent, of any kind.
	Messages int
	// Values counts every value transmission (a value crossing one
	// link counts once).
	Values int
}

// Total returns all energy spent, across every category.
func (l *Ledger) Total() float64 {
	return l.Collection + l.Trigger + l.Requests + l.Install
}

// Add accumulates another ledger into l.
func (l *Ledger) Add(o Ledger) {
	l.Collection += o.Collection
	l.Trigger += o.Trigger
	l.Requests += o.Requests
	l.Install += o.Install
	l.Messages += o.Messages
	l.Values += o.Values
}

// String formats the ledger for logs and CLI output.
func (l *Ledger) String() string {
	return fmt.Sprintf("total=%.2fmJ (collect=%.2f trigger=%.2f request=%.2f install=%.2f) msgs=%d values=%d",
		l.Total(), l.Collection, l.Trigger, l.Requests, l.Install, l.Messages, l.Values)
}
