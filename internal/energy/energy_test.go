package energy

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultModelValid(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The property all the paper's tradeoffs rest on: contacting a
	// node (one message) costs much more than carrying one value.
	if m.PerMessage < 4*m.PerValue() {
		t.Errorf("PerMessage %.3f not well above per-value %.3f", m.PerMessage, m.PerValue())
	}
	// But a value is not free either, or local filtering could never
	// pay (Figure 5's crossover).
	if m.PerValue() < m.PerMessage/20 {
		t.Errorf("per-value %.4f negligible against PerMessage %.3f", m.PerValue(), m.PerMessage)
	}
}

func TestUnicastCost(t *testing.T) {
	m := DefaultModel()
	base := m.Unicast(0, 0)
	if base != m.PerMessage {
		t.Errorf("empty unicast = %g", base)
	}
	one := m.Unicast(1, 0)
	if got, want := one-base, m.PerValue(); math.Abs(got-want) > 1e-12 {
		t.Errorf("marginal value cost %g, want %g", got, want)
	}
	withExtra := m.Unicast(2, 3)
	want := m.PerMessage + m.PerByte*float64(2*m.BytesPerValue+3)
	if math.Abs(withExtra-want) > 1e-12 {
		t.Errorf("unicast(2,3) = %g, want %g", withExtra, want)
	}
}

func TestTriggerCheaperThanUnicast(t *testing.T) {
	m := DefaultModel()
	if m.Trigger() >= m.Unicast(0, 0) {
		t.Errorf("trigger %g not cheaper than empty unicast %g", m.Trigger(), m.Unicast(0, 0))
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Model)
	}{
		{"zero PerMessage", func(m *Model) { m.PerMessage = 0 }},
		{"negative PerByte", func(m *Model) { m.PerByte = -1 }},
		{"zero BytesPerValue", func(m *Model) { m.BytesPerValue = 0 }},
		{"negative BytesPerRequest", func(m *Model) { m.BytesPerRequest = -1 }},
		{"TriggerFraction above 1", func(m *Model) { m.TriggerFraction = 1.5 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := DefaultModel()
			c.mut(&m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted the bad model")
			}
		})
	}
}

func TestLedgerAccumulation(t *testing.T) {
	var l Ledger
	l.Collection = 10
	l.Trigger = 1
	l.Messages = 3
	l.Values = 7
	var o Ledger
	o.Collection = 5
	o.Requests = 2
	o.Install = 4
	o.Messages = 2
	o.Values = 1
	l.Add(o)
	if got := l.Total(); math.Abs(got-22) > 1e-12 {
		t.Errorf("Total = %g, want 22", got)
	}
	if l.Messages != 5 || l.Values != 8 {
		t.Errorf("counts %d/%d", l.Messages, l.Values)
	}
	if s := l.String(); !strings.Contains(s, "msgs=5") {
		t.Errorf("String() = %q", s)
	}
}
