package sim

import (
	"strconv"

	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
)

// Metric names exported by the simulator when Config.Obs is set:
//
//	sim.messages              counter, successfully delivered data messages
//	sim.values                counter, values carried by delivered messages
//	sim.bytes                 counter, content bytes of delivered messages
//	sim.level.<d>.messages    counter, deliveries sent by depth-d nodes
//	sim.level.<d>.bytes       counter, content bytes sent by depth-d nodes
//	sim.triggers              counter, trigger rebroadcasts
//	sim.retransmissions       counter, attempts lost to the medium
//	sim.deferrals             counter, sends postponed by carrier sense
//	sim.dropped               counter, messages abandoned after MaxRetries
//	sim.latency_seconds       gauge, trigger-to-last-root-reception time
//	sim.epoch_mj              histogram, total energy per simulated epoch
//	sim.epoch_latency_seconds histogram, per-epoch collection latency
//
// The two epoch histograms get one observation per run (at finish), so
// the telemetry collector's windowed quantiles over them read as live
// per-epoch energy and latency percentiles.
//
// The delivered-message counters deliberately mirror exec.messages /
// exec.values / exec.bytes / exec.level.*: under a loss-free medium the
// two stacks must report identical numbers (enforced by
// TestLosslessMatchesExec).
//
// With Config.Trace set, the run wraps itself in a "sim.epoch" span
// ("sim.install" for the distribution phase) on the simulated clock,
// parented to Config.Span when one is supplied. Inside it, sim.trigger,
// sim.deadline, sim.defer, sim.loss, and sim.drop events record the
// protocol's progress, and one sim.xfer child span per delivered
// message covers first transmission attempt to delivery. Every record
// that spends energy carries its per-node shares (energy_mj on
// triggers, tx_mj on losses, tx_mj/rx_mj on transfers and installs) in
// the exact floats added to Result.NodeEnergy, so tracetool attribute
// can replay the trace into bitwise-identical per-node totals.

// simObs holds pre-resolved handles; nil disables instrumentation at
// the cost of one pointer check per event.
type simObs struct {
	net *network.Network

	messages, values, bytes               *obs.Counter
	lvlMsgs, lvlBytes                     []*obs.Counter
	triggers, retrans, deferrals, dropped *obs.Counter
	latency                               *obs.Gauge
	epochMJ, epochLatency                 *obs.Histogram

	trace  *obs.Tracer
	parent *obs.Span // caller-supplied enclosing span (Config.Span)
	span   *obs.Span // current sim.epoch / sim.install span

	// fields is the scratch the per-event emitters assemble records in,
	// so tracing an event never packs a fresh variadic slice.
	fields []obs.Field
}

func newSimObs(r *obs.Registry, tr *obs.Tracer, net *network.Network) *simObs {
	if r == nil && tr == nil {
		return nil
	}
	o := &simObs{
		net:          net,
		messages:     r.Counter("sim.messages"),
		values:       r.Counter("sim.values"),
		bytes:        r.Counter("sim.bytes"),
		triggers:     r.Counter("sim.triggers"),
		retrans:      r.Counter("sim.retransmissions"),
		deferrals:    r.Counter("sim.deferrals"),
		dropped:      r.Counter("sim.dropped"),
		latency:      r.Gauge("sim.latency_seconds"),
		epochMJ:      r.Histogram("sim.epoch_mj", epochMJBounds),
		epochLatency: r.Histogram("sim.epoch_latency_seconds", epochLatencyBounds),
		trace:        tr,
	}
	if r != nil {
		maxDepth := 0
		for i := 0; i < net.Size(); i++ {
			if d := net.Depth(network.NodeID(i)); d > maxDepth {
				maxDepth = d
			}
		}
		o.lvlMsgs = make([]*obs.Counter, maxDepth+1)
		o.lvlBytes = make([]*obs.Counter, maxDepth+1)
		for d := 0; d <= maxDepth; d++ {
			ds := strconv.Itoa(d)
			o.lvlMsgs[d] = r.Counter("sim.level." + ds + ".messages")
			o.lvlBytes[d] = r.Counter("sim.level." + ds + ".bytes")
		}
	}
	return o
}

// begin opens the phase span (sim.epoch or sim.install) at simulated
// time zero, parented to the caller's Config.Span.
func (o *simObs) begin(name string, fields ...obs.Field) {
	if o == nil || o.trace == nil {
		return
	}
	o.span = o.trace.StartSpan(o.parent, name, 0, fields...)
}

// emitEvent routes an event through the open phase span when present.
func (o *simObs) emitEvent(name string, at float64, fields ...obs.Field) {
	if o.span != nil {
		o.span.Event(name, at, fields...)
		return
	}
	o.trace.Event(name, at, fields...)
}

// delivered records one successful transmission from v carrying
// nValues readings and contentBytes of content, spanning [start, end]
// on the simulated clock. txMJ and rxMJ are the exact energy shares
// charged to the sender and the receiving parent.
func (o *simObs) delivered(v network.NodeID, nValues, contentBytes int, start, end, txMJ, rxMJ float64) {
	if o == nil {
		return
	}
	o.messages.Inc()
	o.values.Add(int64(nValues))
	o.bytes.Add(int64(contentBytes))
	if o.lvlMsgs != nil {
		d := o.net.Depth(v)
		o.lvlMsgs[d].Inc()
		o.lvlBytes[d].Add(int64(contentBytes))
	}
	if o.trace != nil {
		// "dst" (not "parent"): the record's parent key is taken by the
		// enclosing span's ID.
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		o.fields = append(o.fields[:0],
			obs.FInt("node", int64(v)),
			obs.FInt("dst", int64(o.net.Parent(v))),
			obs.FInt("values", int64(nValues)),
			obs.FInt("bytes", int64(contentBytes)),
			obs.FFloat("tx_mj", txMJ),
			obs.FFloat("rx_mj", rxMJ))
		if o.span != nil {
			o.span.Span("sim.xfer", start, end, o.fields...)
		} else {
			o.trace.Span("sim.xfer", start, end, o.fields...)
		}
	}
}

// installed records one delivered plan bundle on the edge above v
// (parent transmits, v receives) with its exact energy shares.
func (o *simObs) installed(v network.NodeID, bytes int, start, end, txMJ, rxMJ float64) {
	if o == nil || o.trace == nil {
		return
	}
	//alloc:amortized the scratch grows to the widest record once, then is reused per event
	o.fields = append(o.fields[:0],
		obs.FInt("node", int64(v)),
		obs.FInt("dst", int64(o.net.Parent(v))),
		obs.FInt("bytes", int64(bytes)),
		obs.FFloat("tx_mj", txMJ),
		obs.FFloat("rx_mj", rxMJ))
	if o.span != nil {
		o.span.Span("sim.bundle", start, end, o.fields...)
	} else {
		o.trace.Span("sim.bundle", start, end, o.fields...)
	}
}

func (o *simObs) trigger(v network.NodeID, at, energyMJ float64) {
	if o == nil {
		return
	}
	o.triggers.Inc()
	if o.trace != nil {
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		o.fields = append(o.fields[:0],
			obs.FInt("node", int64(v)),
			obs.FFloat("energy_mj", energyMJ))
		o.emitEvent("sim.trigger", at, o.fields...)
	}
}

func (o *simObs) deferred(v network.NodeID, at, until float64) {
	if o == nil {
		return
	}
	o.deferrals.Inc()
	if o.trace != nil {
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		o.fields = append(o.fields[:0],
			obs.FInt("node", int64(v)),
			obs.FFloat("until", until))
		o.emitEvent("sim.defer", at, o.fields...)
	}
}

// loss records one transmission attempt lost to the medium; txMJ is the
// sender's wasted TX share. sender is the transmitting node (the edge's
// lower endpoint during collection, the parent during installation).
func (o *simObs) loss(v, sender network.NodeID, at float64, attempt int, txMJ float64) {
	if o == nil {
		return
	}
	o.retrans.Inc()
	if o.trace != nil {
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		o.fields = append(o.fields[:0],
			obs.FInt("node", int64(v)),
			obs.FInt("sender", int64(sender)),
			obs.FInt("attempt", int64(attempt)),
			obs.FFloat("tx_mj", txMJ))
		o.emitEvent("sim.loss", at, o.fields...)
	}
}

func (o *simObs) drop(v network.NodeID, at float64) {
	if o == nil {
		return
	}
	o.dropped.Inc()
	if o.trace != nil {
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		o.fields = append(o.fields[:0], obs.FInt("node", int64(v)))
		o.emitEvent("sim.drop", at, o.fields...)
	}
}

func (o *simObs) deadline(v network.NodeID, at float64) {
	if o == nil {
		return
	}
	if o.trace != nil {
		//alloc:amortized the scratch grows to the widest record once, then is reused per event
		o.fields = append(o.fields[:0], obs.FInt("node", int64(v)))
		o.emitEvent("sim.deadline", at, o.fields...)
	}
}

// epochMJBounds buckets per-epoch energy totals: sub-mJ idle epochs up
// through multi-joule full-collection rounds on large networks.
var epochMJBounds = []float64{1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// epochLatencyBounds buckets per-epoch collection latency on the
// simulated clock (trigger to last root reception).
var epochLatencyBounds = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// finish sets the latency gauge, observes the epoch histograms, and
// closes the phase span with the run's ledger totals.
func (o *simObs) finish(latency float64, led *energy.Ledger) {
	if o == nil {
		return
	}
	o.latency.Set(latency)
	o.epochMJ.Observe(led.Total())
	o.epochLatency.Observe(latency)
	if o.span != nil {
		o.span.End(latency,
			obs.FFloat("energy_mj", led.Total()),
			obs.FInt("messages", int64(led.Messages)),
			obs.FInt("values", int64(led.Values)))
		o.span = nil
	}
}
