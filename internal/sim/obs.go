package sim

import (
	"strconv"

	"prospector/internal/network"
	"prospector/internal/obs"
)

// Metric names exported by the simulator when Config.Obs is set:
//
//	sim.messages              counter, successfully delivered data messages
//	sim.values                counter, values carried by delivered messages
//	sim.bytes                 counter, content bytes of delivered messages
//	sim.level.<d>.messages    counter, deliveries sent by depth-d nodes
//	sim.level.<d>.bytes       counter, content bytes sent by depth-d nodes
//	sim.triggers              counter, trigger rebroadcasts
//	sim.retransmissions       counter, attempts lost to the medium
//	sim.deferrals             counter, sends postponed by carrier sense
//	sim.dropped               counter, messages abandoned after MaxRetries
//	sim.latency_seconds       gauge, trigger-to-last-root-reception time
//
// The delivered-message counters deliberately mirror exec.messages /
// exec.values / exec.bytes / exec.level.*: under a loss-free medium the
// two stacks must report identical numbers (enforced by
// TestLosslessMatchesExec).
//
// With Config.Trace set, the run additionally emits JSON-lines on the
// simulated clock: sim.trigger, sim.deadline, sim.defer, sim.loss, and
// sim.drop events, plus one sim.xfer span per delivered message
// covering first transmission attempt to delivery.

// simObs holds pre-resolved handles; nil disables instrumentation at
// the cost of one pointer check per event.
type simObs struct {
	net *network.Network

	messages, values, bytes               *obs.Counter
	lvlMsgs, lvlBytes                     []*obs.Counter
	triggers, retrans, deferrals, dropped *obs.Counter
	latency                               *obs.Gauge

	trace *obs.Tracer
}

func newSimObs(r *obs.Registry, tr *obs.Tracer, net *network.Network) *simObs {
	if r == nil && tr == nil {
		return nil
	}
	o := &simObs{
		net:       net,
		messages:  r.Counter("sim.messages"),
		values:    r.Counter("sim.values"),
		bytes:     r.Counter("sim.bytes"),
		triggers:  r.Counter("sim.triggers"),
		retrans:   r.Counter("sim.retransmissions"),
		deferrals: r.Counter("sim.deferrals"),
		dropped:   r.Counter("sim.dropped"),
		latency:   r.Gauge("sim.latency_seconds"),
		trace:     tr,
	}
	if r != nil {
		maxDepth := 0
		for i := 0; i < net.Size(); i++ {
			if d := net.Depth(network.NodeID(i)); d > maxDepth {
				maxDepth = d
			}
		}
		o.lvlMsgs = make([]*obs.Counter, maxDepth+1)
		o.lvlBytes = make([]*obs.Counter, maxDepth+1)
		for d := 0; d <= maxDepth; d++ {
			ds := strconv.Itoa(d)
			o.lvlMsgs[d] = r.Counter("sim.level." + ds + ".messages")
			o.lvlBytes[d] = r.Counter("sim.level." + ds + ".bytes")
		}
	}
	return o
}

// delivered records one successful transmission from v carrying
// nValues readings and contentBytes of content, spanning [start, end]
// on the simulated clock.
func (o *simObs) delivered(v network.NodeID, nValues, contentBytes int, start, end float64) {
	if o == nil {
		return
	}
	o.messages.Inc()
	o.values.Add(int64(nValues))
	o.bytes.Add(int64(contentBytes))
	if o.lvlMsgs != nil {
		d := o.net.Depth(v)
		o.lvlMsgs[d].Inc()
		o.lvlBytes[d].Add(int64(contentBytes))
	}
	if o.trace != nil {
		o.trace.Span("sim.xfer", start, end,
			obs.F("node", int(v)),
			obs.F("parent", int(o.net.Parent(v))),
			obs.F("values", nValues),
			obs.F("bytes", contentBytes))
	}
}

func (o *simObs) trigger(v network.NodeID, at float64) {
	if o == nil {
		return
	}
	o.triggers.Inc()
	if o.trace != nil {
		o.trace.Event("sim.trigger", at, obs.F("node", int(v)))
	}
}

func (o *simObs) deferred(v network.NodeID, at, until float64) {
	if o == nil {
		return
	}
	o.deferrals.Inc()
	if o.trace != nil {
		o.trace.Event("sim.defer", at, obs.F("node", int(v)), obs.F("until", until))
	}
}

func (o *simObs) loss(v network.NodeID, at float64, attempt int) {
	if o == nil {
		return
	}
	o.retrans.Inc()
	if o.trace != nil {
		o.trace.Event("sim.loss", at, obs.F("node", int(v)), obs.F("attempt", attempt))
	}
}

func (o *simObs) drop(v network.NodeID, at float64) {
	if o == nil {
		return
	}
	o.dropped.Inc()
	if o.trace != nil {
		o.trace.Event("sim.drop", at, obs.F("node", int(v)))
	}
}

func (o *simObs) deadline(v network.NodeID, at float64) {
	if o == nil {
		return
	}
	if o.trace != nil {
		o.trace.Event("sim.deadline", at, obs.F("node", int(v)))
	}
}

func (o *simObs) finish(latency float64) {
	if o == nil {
		return
	}
	o.latency.Set(latency)
}
