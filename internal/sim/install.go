package sim

import (
	"fmt"

	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// RunInstall simulates the initial distribution phase: the base station
// hands each participating child the bundle of encoded subplans for its
// subtree; every node peels its own part off and relays the rest, one
// unicast per participating child, with real wire sizes, optional loss,
// and the same carrier-sense medium as the collection phase. On a
// lossless medium the energy equals plan.InstallCost exactly (a
// property the tests enforce).
func RunInstall(cfg Config, p *plan.Plan) (*Result, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("sim: config needs a network")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(cfg.Net); err != nil {
		return nil, err
	}
	if cfg.ByteRate <= 0 {
		return nil, fmt.Errorf("sim: ByteRate must be positive")
	}
	if (cfg.LossProb != nil || cfg.InterferenceRange > 0) && cfg.Rng == nil {
		return nil, fmt.Errorf("sim: loss or contention requires an Rng")
	}
	if cfg.LossProb != nil && len(cfg.LossProb) != cfg.Net.Size() {
		return nil, fmt.Errorf("sim: %d loss probabilities for %d nodes", len(cfg.LossProb), cfg.Net.Size())
	}
	s := newSim(cfg, p, make([]float64, cfg.Net.Size()))
	inst := &installer{sim: s}
	inst.run()
	return s.res, nil
}

// installer reuses the collection simulator's event queue and medium
// state for the top-down distribution phase.
type installer struct {
	*sim
	// delivered[v] marks nodes whose bundle has arrived.
	delivered []bool
}

func (in *installer) run() {
	n := in.cfg.Net.Size()
	in.delivered = make([]bool, n)
	in.delivered[network.Root] = true
	in.em.begin("sim.install",
		obs.FStr("plan", in.plan.Kind.String()),
		obs.FInt("nodes", int64(n)))
	// The queue carries evTrySend events whose node is the RECEIVING
	// child: the parent transmits that child's bundle.
	for _, c := range in.cfg.Net.Children(network.Root) {
		if in.plan.UsesEdge(c) {
			in.schedule(0, evTrySend, c)
		}
	}
	for !in.queue.empty() {
		e := in.queue.pop()
		in.now = e.at
		switch e.kind {
		case evTrySend:
			in.trySend(e.node)
		case evDelivery:
			in.deliver(e.node)
		}
	}
	in.em.finish(in.res.Latency, &in.res.Ledger)
}

// trySend attempts the unicast of child v's bundle from its parent.
func (in *installer) trySend(v network.NodeID) {
	if in.delivered[v] {
		return
	}
	parent := in.cfg.Net.Parent(v)
	bytes := in.plan.BundleBytes(in.cfg.Net, v)
	dur := float64(in.cfg.HeaderBytes+bytes) / in.cfg.ByteRate
	// Carrier sense around the transmitting parent.
	if free := in.mediumFreeAt(parent); free > in.now {
		in.res.Deferrals++
		jitter := 0.0
		if in.cfg.Rng != nil {
			jitter = in.cfg.Rng.Float64() * dur / 4
		}
		in.em.deferred(v, in.now, free+jitter)
		in.schedule(free+jitter, evTrySend, v)
		return
	}
	in.occupyMedium(parent, dur)
	cost := in.cfg.Model.PerMessage + in.cfg.Model.PerByte*float64(bytes)
	in.attempts[v]++
	in.res.EdgeAttempts[v]++
	firstTry := in.firstTry[v]
	if firstTry < 0 {
		firstTry = in.now
		in.firstTry[v] = firstTry
	}
	if in.cfg.LossProb != nil && in.cfg.Rng.Float64() < in.cfg.LossProb[v] {
		in.res.EdgeFailures[v]++
		in.chargeLoss(parent, cost)
		in.em.loss(v, parent, in.now, in.attempts[v], in.cfg.Model.TxShare(cost))
		if in.attempts[v] > in.cfg.MaxRetries {
			in.res.Dropped++
			in.res.Abandoned = append(in.res.Abandoned, v)
			in.em.drop(v, in.now)
			return // the whole subtree below v stays uninstalled
		}
		in.schedule(in.now+dur*1.5, evTrySend, v)
		return
	}
	in.chargeInstall(parent, v, cost)
	in.em.installed(v, bytes, firstTry, in.now+dur,
		in.cfg.Model.TxShare(cost), in.cfg.Model.RxShare(cost))
	in.schedule(in.now+dur, evDelivery, v)
}

// chargeLoss debits the parent's TX share of a lost bundle unicast.
func (in *installer) chargeLoss(parent network.NodeID, cost float64) {
	in.res.NodeEnergy[parent] += in.cfg.Model.TxShare(cost)
	in.res.Ledger.Install += in.cfg.Model.TxShare(cost)
	in.res.Retransmissions++
}

// chargeInstall debits a delivered bundle unicast from parent to v.
func (in *installer) chargeInstall(parent, v network.NodeID, cost float64) {
	in.res.NodeEnergy[parent] += in.cfg.Model.TxShare(cost)
	in.res.NodeEnergy[v] += in.cfg.Model.RxShare(cost)
	in.res.Ledger.Install += cost
	in.res.Ledger.Messages++
}

// deliver marks v installed and forwards its children's bundles.
func (in *installer) deliver(v network.NodeID) {
	in.delivered[v] = true
	if in.now > in.res.Latency {
		in.res.Latency = in.now
	}
	for _, c := range in.cfg.Net.Children(v) {
		if in.plan.UsesEdge(c) {
			in.schedule(in.now, evTrySend, c)
		}
	}
}
