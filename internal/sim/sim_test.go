package sim

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

func randTree(rng *rand.Rand, n int) *network.Network {
	parent := make([]network.NodeID, n)
	for i := 1; i < n; i++ {
		parent[i] = network.NodeID(rng.Intn(i))
	}
	net, err := network.New(parent, nil)
	if err != nil {
		panic(err)
	}
	return net
}

func randValues(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 10
	}
	return v
}

func randBandwidth(rng *rand.Rand, net *network.Network, lo int) []int {
	bw := make([]int, net.Size())
	for v := 1; v < net.Size(); v++ {
		bw[v] = lo + rng.Intn(4)
		if s := net.SubtreeSize(network.NodeID(v)); bw[v] > s {
			bw[v] = s
		}
	}
	return bw
}

// TestLosslessMatchesExec is the simulator's keystone: with a perfect
// medium it must return exactly the values, proven counts, and energy
// totals of the analytic executor.
func TestLosslessMatchesExec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(50)
		net := randTree(rng, n)
		vals := randValues(rng, n)
		var p *plan.Plan
		var err error
		if trial%2 == 0 {
			p, err = plan.NewProof(net, randBandwidth(rng, net, 1))
		} else {
			bw := randBandwidth(rng, net, 0)
			for _, v := range net.Preorder() {
				if v != network.Root {
					if par := net.Parent(v); par != network.Root && bw[par] == 0 {
						bw[v] = 0
					}
				}
			}
			p, err = plan.NewFiltering(net, bw)
		}
		if err != nil {
			t.Fatal(err)
		}
		execReg := obs.NewRegistry()
		env := exec.Env{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel()), Obs: execReg}
		want, err := exec.Run(env, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		simReg := obs.NewRegistry()
		cfg := DefaultConfig(net)
		cfg.Obs = simReg
		got, err := Run(cfg, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Returned) != len(want.Returned) {
			t.Fatalf("trial %d: %d values vs %d", trial, len(got.Returned), len(want.Returned))
		}
		for i := range want.Returned {
			if got.Returned[i] != want.Returned[i] {
				t.Fatalf("trial %d: value %d differs: %v vs %v", trial, i, got.Returned[i], want.Returned[i])
			}
		}
		if got.Proven != want.Proven {
			t.Fatalf("trial %d: proven %d vs %d", trial, got.Proven, want.Proven)
		}
		if math.Abs(got.Ledger.Total()-want.Ledger.Total()) > 1e-9 {
			t.Fatalf("trial %d: energy %.6f vs %.6f", trial, got.Ledger.Total(), want.Ledger.Total())
		}
		if got.Ledger.Messages != want.Ledger.Messages || got.Ledger.Values != want.Ledger.Values {
			t.Fatalf("trial %d: msgs/values %d/%d vs %d/%d", trial,
				got.Ledger.Messages, got.Ledger.Values, want.Ledger.Messages, want.Ledger.Values)
		}
		compareObsSnapshots(t, trial, execReg.Snapshot(), simReg.Snapshot(), got.NodeEnergy)
	}
}

// compareObsSnapshots asserts the exec.* and sim.* metric families of a
// lossless run agree: same message/value/byte totals, same per-level
// traffic, and exec's per-node energy gauges matching the simulator's
// independently metered NodeEnergy.
func compareObsSnapshots(t *testing.T, trial int, es, ss *obs.Snapshot, nodeEnergy []float64) {
	t.Helper()
	for _, name := range []string{"messages", "values", "bytes"} {
		e, s := es.Counters["exec."+name], ss.Counters["sim."+name]
		if e != s {
			t.Fatalf("trial %d: exec.%s = %d but sim.%s = %d", trial, name, e, name, s)
		}
		if e == 0 {
			t.Fatalf("trial %d: exec.%s is zero; instrumentation not firing", trial, name)
		}
	}
	// Per-level counters must agree in both directions: every level one
	// side reports, the other must report identically (missing key = 0).
	for name, v := range es.Counters {
		if suffix, ok := strings.CutPrefix(name, "exec.level."); ok {
			if sv := ss.Counters["sim.level."+suffix]; sv != v {
				t.Fatalf("trial %d: exec.level.%s = %d but sim counterpart = %d", trial, suffix, v, sv)
			}
		}
	}
	for name, v := range ss.Counters {
		if suffix, ok := strings.CutPrefix(name, "sim.level."); ok {
			if ev := es.Counters["exec.level."+suffix]; ev != v {
				t.Fatalf("trial %d: sim.level.%s = %d but exec counterpart = %d", trial, suffix, v, ev)
			}
		}
	}
	if es.Counters["exec.requests"] != 0 {
		t.Fatalf("trial %d: collection phase recorded %d requests", trial, es.Counters["exec.requests"])
	}
	// exec attributes per-node energy analytically; the simulator meters
	// each radio independently. Lossless, they must coincide.
	for i, want := range nodeEnergy {
		got := es.Gauges["exec.node."+strconv.Itoa(i)+".energy_mj"]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: node %d energy gauge %.9f vs simulated %.9f", trial, i, got, want)
		}
	}
}

func TestNodeEnergySumsToLedger(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := randTree(rng, 40)
	vals := randValues(rng, 40)
	p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(net), p, vals)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range res.NodeEnergy {
		sum += e
	}
	if math.Abs(sum-res.Ledger.Total()) > 1e-9 {
		t.Errorf("per-node sum %.6f != ledger %.6f", sum, res.Ledger.Total())
	}
	// The root only receives and triggers; it must spend less than a
	// mid-tree node forwarding everything.
	if res.NodeEnergy[network.Root] <= 0 {
		t.Error("root spent nothing; should pay RX shares")
	}
}

func TestLatencyGrowsWithDepth(t *testing.T) {
	shallow := network.Star(20)
	deep := network.Line(20)
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = float64(i)
	}
	mk := func(net *network.Network) float64 {
		bw := make([]int, 20)
		for v := 1; v < 20; v++ {
			bw[v] = 1
		}
		p, err := plan.NewProof(net, bw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(DefaultConfig(net), p, vals)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	if ls, ld := mk(shallow), mk(deep); ld <= ls {
		t.Errorf("chain latency %.4fs not above star latency %.4fs", ld, ls)
	}
}

func TestContentionCausesDeferrals(t *testing.T) {
	// All nodes in one collision domain: positions at the origin.
	n := 15
	parent := make([]network.NodeID, n)
	pos := make([]network.Point, n)
	for i := 1; i < n; i++ {
		parent[i] = network.Root
	}
	net, err := network.New(parent, pos)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, n)
	bw := make([]int, n)
	for i := 1; i < n; i++ {
		bw[i] = 1
	}
	p, err := plan.NewProof(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(net)
	cfg.InterferenceRange = 10
	cfg.Rng = rand.New(rand.NewSource(3))
	res, err := Run(cfg, p, vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferrals == 0 {
		t.Error("no carrier-sense deferrals in a single collision domain")
	}
	// Serialized medium: latency at least 14 message durations.
	noContention, err := Run(DefaultConfig(net), p, vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= noContention.Latency {
		t.Errorf("contention latency %.4f not above contention-free %.4f", res.Latency, noContention.Latency)
	}
	// Results unchanged: carrier sense only delays.
	if len(res.Returned) != len(noContention.Returned) {
		t.Error("contention changed the result")
	}
}

func TestLossForcesRetransmissions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := randTree(rng, 30)
	vals := randValues(rng, 30)
	p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(net)
	loss := make([]float64, 30)
	for i := range loss {
		loss[i] = 0.4
	}
	cfg.LossProb = loss
	cfg.Rng = rand.New(rand.NewSource(5))
	res, err := Run(cfg, p, vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Error("40% loss caused no retransmissions")
	}
	clean, err := Run(DefaultConfig(net), p, vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Total() <= clean.Ledger.Total() {
		t.Errorf("lossy run cost %.2f not above clean %.2f", res.Ledger.Total(), clean.Ledger.Total())
	}
}

func TestTotalLossDropsSubtrees(t *testing.T) {
	net := network.Line(5)
	vals := []float64{0, 1, 2, 3, 4}
	bw := []int{0, 4, 3, 2, 1}
	p, err := plan.NewProof(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(net)
	loss := []float64{0, 0, 0, 1, 0} // edge above node 3 always fails
	cfg.LossProb = loss
	cfg.MaxRetries = 2
	cfg.Rng = rand.New(rand.NewSource(6))
	res, err := Run(cfg, p, vals)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("permanently failing edge never dropped a message")
	}
	// Values 3 and 4 cannot reach the root.
	for _, v := range res.Returned {
		if v.Node == 3 || v.Node == 4 {
			t.Errorf("node %d's value crossed a dead edge", v.Node)
		}
	}
	// The root's proven count must be 0: child 1's subtree is not
	// fully visible and no smaller witness arrived from below node 3.
	if res.Proven != 0 {
		t.Errorf("proven = %d despite a silenced subtree", res.Proven)
	}
	if len(res.Returned) == 0 {
		t.Error("deadline logic failed: nothing returned at all")
	}
}

func TestRunValidation(t *testing.T) {
	net := network.Line(3)
	p, err := plan.NewFiltering(net, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(DefaultConfig(net), p, []float64{1}); err == nil {
		t.Error("accepted short values")
	}
	cfg := DefaultConfig(net)
	cfg.LossProb = []float64{0, 0.5, 0}
	if _, err := Run(cfg, p, []float64{1, 2, 3}); err == nil {
		t.Error("accepted loss without an Rng")
	}
	cfg = DefaultConfig(net)
	cfg.ByteRate = 0
	if _, err := Run(cfg, p, []float64{1, 2, 3}); err == nil {
		t.Error("accepted zero byte rate")
	}
	chosen := []bool{false, true, false}
	sp, err := plan.NewSelection(net, chosen)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(DefaultConfig(net), sp, []float64{1, 2, 3}); err == nil {
		t.Error("accepted a selection plan")
	}
}

func TestEstimateLossProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := randTree(rng, 25)
	vals := randValues(rng, 25)
	p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, 25)
	for i := 1; i < 25; i++ {
		truth[i] = 0.1 + 0.3*rng.Float64()
	}
	cfg := DefaultConfig(net)
	cfg.LossProb = truth
	cfg.MaxRetries = 50
	cfg.Rng = rand.New(rand.NewSource(8))
	var results []*Result
	for run := 0; run < 300; run++ {
		res, err := Run(cfg, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	probs, err := EstimateLossProbs(results, 25)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 25; v++ {
		if diff := probs[v] - truth[v]; diff < -0.08 || diff > 0.08 {
			t.Errorf("edge %d: estimated %.3f, truth %.3f", v, probs[v], truth[v])
		}
	}
	// Mismatched widths are rejected.
	if _, err := EstimateLossProbs(results, 10); err == nil {
		t.Error("accepted wrong edge count")
	}
}

func TestFailureFeedbackLoop(t *testing.T) {
	// The full Section 4.4 loop: simulate with losses, estimate the
	// per-edge probabilities, inflate planning costs with them, and
	// verify the inflated table is dearer exactly on the lossy edges.
	rng := rand.New(rand.NewSource(9))
	net := randTree(rng, 20)
	vals := randValues(rng, 20)
	p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
	if err != nil {
		t.Fatal(err)
	}
	loss := make([]float64, 20)
	loss[5], loss[9] = 0.5, 0.3 // only two flaky links
	cfg := DefaultConfig(net)
	cfg.LossProb = loss
	cfg.Rng = rand.New(rand.NewSource(10))
	var results []*Result
	for run := 0; run < 200; run++ {
		res, err := Run(cfg, p, vals)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	probs, err := EstimateLossProbs(results, 20)
	if err != nil {
		t.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	base := plan.NewCosts(net, energy.DefaultModel())
	if err := costs.InflateForFailures(probs, 0.6); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 20; v++ {
		inflated := costs.Msg[v] > base.Msg[v]*1.02
		flaky := loss[v] > 0
		if flaky && !inflated {
			t.Errorf("flaky edge %d not inflated (est %.3f)", v, probs[v])
		}
		if !flaky && inflated {
			t.Errorf("clean edge %d inflated (est %.3f)", v, probs[v])
		}
	}
}

func TestRunInstallMatchesStaticCost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(40)
		net := randTree(rng, n)
		p, err := plan.NewProof(net, randBandwidth(rng, net, 1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunInstall(DefaultConfig(net), p)
		if err != nil {
			t.Fatal(err)
		}
		costs := plan.NewCosts(net, energy.DefaultModel())
		want := p.InstallCost(net, costs)
		if math.Abs(res.Ledger.Install-want) > 1e-9 {
			t.Fatalf("trial %d: simulated install %.6f, static %.6f", trial, res.Ledger.Install, want)
		}
		if res.Ledger.Messages != p.Participants()-1 {
			t.Fatalf("trial %d: %d messages for %d participants", trial, res.Ledger.Messages, p.Participants())
		}
		if res.Latency <= 0 {
			t.Fatalf("trial %d: no latency recorded", trial)
		}
		// Per-node energies sum to the ledger.
		sum := 0.0
		for _, e := range res.NodeEnergy {
			sum += e
		}
		if math.Abs(sum-res.Ledger.Total()) > 1e-9 {
			t.Fatalf("trial %d: node sum %.6f != total %.6f", trial, sum, res.Ledger.Total())
		}
	}
}

func TestRunInstallLossSilencesSubtree(t *testing.T) {
	net := network.Line(5)
	bw := []int{0, 4, 3, 2, 1}
	p, err := plan.NewProof(net, bw)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(net)
	cfg.LossProb = []float64{0, 0, 1, 0, 0} // bundle to node 2 always lost
	cfg.MaxRetries = 2
	cfg.Rng = rand.New(rand.NewSource(12))
	res, err := RunInstall(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 {
		t.Fatalf("dropped = %d", res.Dropped)
	}
	// Node 1 installed; nodes 2..4 never received anything: exactly one
	// successful message.
	if res.Ledger.Messages != 1 {
		t.Errorf("messages = %d, want 1", res.Ledger.Messages)
	}
	if len(res.Abandoned) != 1 || res.Abandoned[0] != 2 {
		t.Errorf("abandoned = %v", res.Abandoned)
	}
}
