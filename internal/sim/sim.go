// Package sim is a discrete-event simulator of a MICA2-style mote
// network executing a collection phase, in the spirit of the paper's
// own evaluation harness ("our own simulator of a network of Crossbow
// MICA2 motes... a generic MAC-layer protocol").
//
// Where internal/exec computes the outcome and energy of a plan
// analytically, sim plays it out over time: the trigger broadcast
// propagates down the tree, leaf nodes transmit first, parents wait for
// their children (with TAG-style slot deadlines), a carrier-sense MAC
// serializes transmissions among interfering radios, lossy links force
// retransmissions, and every radio's energy is metered separately.
// With a loss-free medium its results coincide exactly with
// internal/exec — a property the tests enforce — while additionally
// reporting latency, per-node energy, and retransmission counts.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/plan"
)

// Config parameterizes a simulation run.
type Config struct {
	Net   *network.Network
	Model energy.Model
	// ByteRate is the radio throughput in bytes/second (MICA2: ~2400).
	ByteRate float64
	// HeaderBytes is the per-message overhead on the air (preamble,
	// headers, handshake), matching the PerMessage cost in time.
	HeaderBytes int
	// InterferenceRange is the distance within which two simultaneous
	// transmissions collide; 0 disables contention (infinite spatial
	// reuse).
	InterferenceRange float64
	// LossProb[v] is the probability one transmission attempt on the
	// edge above v fails; nil means lossless.
	LossProb []float64
	// MaxRetries bounds retransmissions per message; afterwards the
	// message is dropped (the parent proceeds at its deadline).
	MaxRetries int
	// SlotSeconds is the TAG-style per-level time slot; 0 derives it
	// from the largest possible message duration.
	SlotSeconds float64
	// Rng drives loss draws and contention jitter. Required when
	// LossProb or InterferenceRange are set.
	Rng *rand.Rand
	// Obs, when non-nil, receives sim.* metrics (see obs.go). Nil keeps
	// the event loop free of instrumentation cost.
	Obs *obs.Registry
	// Trace, when non-nil, receives JSON-lines events and spans stamped
	// with the simulated clock.
	Trace *obs.Tracer
	// Span, when non-nil, parents the run's sim.epoch / sim.install
	// span, slotting the simulation into a caller-owned trace tree.
	Span *obs.Span
}

// DefaultConfig returns MICA2-flavored settings for a network.
func DefaultConfig(net *network.Network) Config {
	return Config{
		Net:               net,
		Model:             energy.DefaultModel(),
		ByteRate:          2400,
		HeaderBytes:       26,
		InterferenceRange: 0,
		MaxRetries:        5,
	}
}

// Result reports one simulated collection phase.
type Result struct {
	// Returned holds the values that reached the root, best first.
	Returned []exec.ValueAt
	// Proven counts the root's provable prefix (Proof plans only).
	Proven int
	// Ledger aggregates all energy, as in internal/exec.
	Ledger energy.Ledger
	// NodeEnergy is each node's individual spend (radio TX + RX).
	NodeEnergy []float64
	// Latency is the time from trigger to the root's last reception,
	// in seconds.
	Latency float64
	// Retransmissions counts extra attempts forced by loss.
	Retransmissions int
	// Deferrals counts transmissions postponed by carrier sense.
	Deferrals int
	// Dropped counts messages abandoned after MaxRetries.
	Dropped int
	// Abandoned lists the nodes whose message never got through.
	Abandoned []network.NodeID
	// EdgeAttempts and EdgeFailures count, per edge (indexed by the
	// lower endpoint), transmission attempts and lost attempts — the
	// statistics Section 4.4 feeds back into cost inflation.
	EdgeAttempts, EdgeFailures []int
}

// event is one scheduled occurrence in the simulation.
type event struct {
	at   float64
	seq  int // tie-break for determinism
	kind eventKind
	node network.NodeID
}

type eventKind int

const (
	evTrigger  eventKind = iota // node receives the re-execute broadcast
	evTrySend                   // node attempts/retries its unicast to parent
	evDelivery                  // node's message arrives at its parent
	evDeadline                  // node's slot deadline: send what you have
)

// eventQueue is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap would box every pushed and popped event through
// interface{}, putting one heap allocation on every scheduling step of
// the epoch drain; the typed heap keeps the drain allocation-free.
type eventQueue struct{ items []event }

func (q *eventQueue) empty() bool { return len(q.items) == 0 }

func (q *eventQueue) less(i, j int) bool {
	if q.items[i].at != q.items[j].at {
		return q.items[i].at < q.items[j].at
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *eventQueue) push(e event) {
	//alloc:amortized the heap grows to the epoch's outstanding-event high-water mark, then is reused
	q.items = append(q.items, e)
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	q.items = q.items[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		s := l
		if r := l + 1; r < n && q.less(r, l) {
			s = r
		}
		if !q.less(s, i) {
			break
		}
		q.items[i], q.items[s] = q.items[s], q.items[i]
		i = s
	}
	return top
}

// sim is the mutable run state.
type sim struct {
	cfg    Config
	plan   *plan.Plan
	values []float64
	res    *Result

	queue eventQueue
	seq   int
	now   float64

	// Per-node protocol state.
	expected []int // children still awaited
	deadline []float64
	sent     []bool
	gaveUp   []bool
	// lists[v] holds v's received/owned values; the backing storage is
	// carved from listArena with capacity SubtreeSize(v), so pooling
	// appends never grow during the drain.
	lists     [][]exec.ValueAt
	listArena []exec.ValueAt
	// childList[v] is v's delivered payload (aliasing lists[v]'s sorted
	// prefix); childOK[v] marks that the message actually arrived.
	childList [][]exec.ValueAt
	childOK   []bool
	childProv []int
	attempts  []int

	// Medium state: the time each node's neighborhood frees up.
	busyUntil []float64
	neighbors [][]network.NodeID

	slot float64
	// subHeight[v]: height of the subtree rooted at v.
	subHeight []int

	// em holds pre-resolved metric handles; nil when observability is off.
	em *simObs
	// firstTry[v] is the simulated time of v's first transmission
	// attempt (-1 until it happens); anchors the sim.xfer span.
	firstTry []float64
}

// Run simulates one collection phase of the plan over the epoch's
// ground-truth readings.
func Run(cfg Config, p *plan.Plan, values []float64) (*Result, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("sim: config needs a network")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if len(values) != cfg.Net.Size() {
		return nil, fmt.Errorf("sim: %d readings for %d nodes", len(values), cfg.Net.Size())
	}
	if err := p.Validate(cfg.Net); err != nil {
		return nil, err
	}
	if p.Kind == plan.Selection {
		return nil, fmt.Errorf("sim: selection plans are executed analytically; simulate Filtering or Proof plans")
	}
	if cfg.ByteRate <= 0 {
		return nil, fmt.Errorf("sim: ByteRate must be positive")
	}
	if (cfg.LossProb != nil || cfg.InterferenceRange > 0) && cfg.Rng == nil {
		return nil, fmt.Errorf("sim: loss or contention requires an Rng")
	}
	if cfg.LossProb != nil && len(cfg.LossProb) != cfg.Net.Size() {
		return nil, fmt.Errorf("sim: %d loss probabilities for %d nodes", len(cfg.LossProb), cfg.Net.Size())
	}
	s := newSim(cfg, p, values)
	s.run()
	return s.res, nil
}

func newSim(cfg Config, p *plan.Plan, values []float64) *sim {
	n := cfg.Net.Size()
	s := &sim{
		cfg:    cfg,
		plan:   p,
		values: values,
		res: &Result{
			NodeEnergy:   make([]float64, n),
			EdgeAttempts: make([]int, n),
			EdgeFailures: make([]int, n),
		},
		expected:  make([]int, n),
		deadline:  make([]float64, n),
		sent:      make([]bool, n),
		gaveUp:    make([]bool, n),
		lists:     make([][]exec.ValueAt, n),
		childList: make([][]exec.ValueAt, n),
		childOK:   make([]bool, n),
		childProv: make([]int, n),
		attempts:  make([]int, n),
		busyUntil: make([]float64, n),
		subHeight: make([]int, n),
		em:        newSimObs(cfg.Obs, cfg.Trace, cfg.Net),
		firstTry:  make([]float64, n),
	}
	if s.em != nil {
		s.em.parent = cfg.Span
	}
	for i := range s.firstTry {
		s.firstTry[i] = -1
	}
	net := cfg.Net
	net.PostorderWalk(func(v network.NodeID) {
		h := 0
		for _, c := range net.Children(v) {
			if s.plan.UsesEdge(c) {
				s.expected[v]++
				if s.subHeight[c]+1 > h {
					h = s.subHeight[c] + 1
				}
			}
		}
		s.subHeight[v] = h
	})
	// Pool storage: node v can hold at most its subtree's node count
	// (its own reading plus every delivered child payload), so carving
	// that capacity per node from one arena makes pooling appends
	// growth-free for the whole epoch.
	total := 0
	for v := 0; v < n; v++ {
		total += net.SubtreeSize(network.NodeID(v))
	}
	s.listArena = make([]exec.ValueAt, total)
	off := 0
	for v := 0; v < n; v++ {
		sz := net.SubtreeSize(network.NodeID(v))
		s.lists[v] = s.listArena[off : off : off+sz]
		off += sz
	}
	// Slot: the longest message (subtree-size values) plus margin.
	if cfg.SlotSeconds > 0 {
		s.slot = cfg.SlotSeconds
	} else {
		maxBytes := float64(cfg.HeaderBytes + cfg.Model.BytesPerValue*net.Size())
		s.slot = 2.5 * maxBytes / cfg.ByteRate * float64(1+cfg.MaxRetries)
	}
	if cfg.InterferenceRange > 0 {
		s.neighbors = make([][]network.NodeID, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && net.Pos(network.NodeID(i)).Dist(net.Pos(network.NodeID(j))) <= cfg.InterferenceRange {
					s.neighbors[i] = append(s.neighbors[i], network.NodeID(j))
				}
			}
		}
	}
	return s
}

func (s *sim) schedule(at float64, kind eventKind, node network.NodeID) {
	s.seq++
	s.queue.push(event{at: at, seq: s.seq, kind: kind, node: node})
}

// msgDuration returns the airtime of a message carrying nValues plus
// extra bytes.
func (s *sim) msgDuration(nValues, extra int) float64 {
	bytes := s.cfg.HeaderBytes + nValues*s.cfg.Model.BytesPerValue + extra
	return float64(bytes) / s.cfg.ByteRate
}

func (s *sim) run() {
	net := s.cfg.Net
	s.em.begin("sim.epoch",
		obs.FStr("plan", s.plan.Kind.String()),
		obs.FInt("nodes", int64(net.Size())))
	// Trigger propagation: each internal node with participating
	// children rebroadcasts; depth d hears it after d trigger-hops.
	trigDur := s.msgDuration(0, 0) / 2 // broadcasts skip the handshake
	for _, v := range net.Preorder() {
		rebroadcasts := false
		for _, c := range net.Children(v) {
			if s.plan.UsesEdge(c) {
				rebroadcasts = true
				break
			}
		}
		if rebroadcasts {
			s.chargeTrigger(v, float64(net.Depth(v))*trigDur)
		}
	}
	s.seedTriggers()
	s.drain()
	s.finish()
}

// seedTriggers queues the trigger arrival of every participating node:
// depth-d nodes hear the rebroadcast chain after d trigger-hops.
//
//alloc:none
func (s *sim) seedTriggers() {
	net := s.cfg.Net
	trigDur := s.msgDuration(0, 0) / 2
	for _, v := range net.Preorder() {
		if v == network.Root || s.plan.UsesEdge(v) {
			s.schedule(float64(net.Depth(v))*trigDur, evTrigger, v)
		}
	}
}

// drain runs the event loop to exhaustion. This is the per-epoch hot
// path: every handler works in state pre-carved by newSim (the typed
// event heap, the arena-backed value pools, the resolved metric
// handles), so a drained epoch allocates nothing at steady state.
//
//alloc:none
func (s *sim) drain() {
	for !s.queue.empty() {
		e := s.queue.pop()
		s.now = e.at
		switch e.kind {
		case evTrigger:
			s.onTrigger(e.node)
		case evTrySend:
			s.onTrySend(e.node)
		case evDelivery:
			s.onDelivery(e.node)
		case evDeadline:
			s.onDeadline(e.node)
		}
	}
}

// reset re-arms the simulator for another epoch over the same plan and
// values, keeping every buffer's capacity so a warmed simulator can
// replay epochs without allocating.
func (s *sim) reset() {
	s.queue.items = s.queue.items[:0]
	s.seq, s.now = 0, 0
	for i := range s.sent {
		s.expected[i] = 0
		s.deadline[i] = 0
		s.sent[i] = false
		s.gaveUp[i] = false
		s.lists[i] = s.lists[i][:0]
		s.childList[i] = nil
		s.childOK[i] = false
		s.childProv[i] = 0
		s.attempts[i] = 0
		s.busyUntil[i] = 0
		s.firstTry[i] = -1
		s.res.NodeEnergy[i] = 0
		s.res.EdgeAttempts[i] = 0
		s.res.EdgeFailures[i] = 0
	}
	res := s.res
	*res = Result{
		NodeEnergy:   res.NodeEnergy,
		EdgeAttempts: res.EdgeAttempts,
		EdgeFailures: res.EdgeFailures,
	}
	net := s.cfg.Net
	order := net.Preorder()
	for idx := len(order) - 1; idx >= 0; idx-- {
		v := order[idx]
		for _, c := range net.Children(v) {
			if s.plan.UsesEdge(c) {
				s.expected[v]++
			}
		}
	}
}

// chargeTrigger debits one trigger rebroadcast at v, heard at hearAt.
func (s *sim) chargeTrigger(v network.NodeID, hearAt float64) {
	c := s.cfg.Model.Trigger()
	s.res.Ledger.Trigger += c
	s.res.NodeEnergy[v] += c
	s.em.trigger(v, hearAt, c)
}

// chargeLoss debits the sender's TX share of a lost collection unicast;
// the receiver hears nothing and pays nothing.
func (s *sim) chargeLoss(v network.NodeID, cost float64) {
	s.res.NodeEnergy[v] += s.cfg.Model.TxShare(cost)
	s.res.Ledger.Collection += s.cfg.Model.TxShare(cost)
	s.res.Retransmissions++
}

// chargeDelivery debits a delivered collection unicast from v to its
// parent carrying nValues readings.
func (s *sim) chargeDelivery(v, parent network.NodeID, nValues int, cost float64) {
	s.res.NodeEnergy[v] += s.cfg.Model.TxShare(cost)
	s.res.NodeEnergy[parent] += s.cfg.Model.RxShare(cost)
	s.res.Ledger.Collection += cost
	s.res.Ledger.Messages++
	s.res.Ledger.Values += nValues
}

// onTrigger initializes a node: it reads its sensor, arms its deadline,
// and — if it awaits no children — queues its transmission.
func (s *sim) onTrigger(v network.NodeID) {
	//alloc:amortized the pool's capacity is pre-carved to the subtree size in newSim; appends never grow
	s.lists[v] = append(s.lists[v], exec.ValueAt{Node: v, Val: s.values[v]})
	// Deadline: enough slots for the whole subtree below to drain.
	s.deadline[v] = s.now + float64(s.subHeight[v]+1)*s.slot
	if v == network.Root {
		return
	}
	if s.expected[v] == 0 {
		s.schedule(s.now, evTrySend, v)
	} else {
		s.schedule(s.deadline[v], evDeadline, v)
	}
}

// onDeadline forces a node that is still waiting to transmit whatever
// it has (some child messages were dropped).
func (s *sim) onDeadline(v network.NodeID) {
	if s.sent[v] || s.expected[v] == 0 {
		return
	}
	s.em.deadline(v, s.now)
	s.expected[v] = 0
	s.schedule(s.now, evTrySend, v)
}

// onTrySend attempts the node's unicast to its parent, deferring if the
// medium around it is busy and retrying on loss.
func (s *sim) onTrySend(v network.NodeID) {
	if s.sent[v] {
		return
	}
	if s.firstTry[v] < 0 {
		s.firstTry[v] = s.now
	}
	payload, provenCnt := s.outgoing(v)
	extra := 0
	if s.plan.Kind == plan.Proof && len(s.cfg.Net.Children(v)) > 0 && provenCnt < len(payload) {
		extra = 1
	}
	dur := s.msgDuration(len(payload), extra)
	// Carrier sense: defer while the neighborhood is busy.
	if free := s.mediumFreeAt(v); free > s.now {
		s.res.Deferrals++
		jitter := 0.0
		if s.cfg.Rng != nil {
			jitter = s.cfg.Rng.Float64() * dur / 4
		}
		s.em.deferred(v, s.now, free+jitter)
		s.schedule(free+jitter, evTrySend, v)
		return
	}
	s.occupyMedium(v, dur)
	// Energy: every attempt costs the sender its TX share; the
	// receiver pays its RX share only on successful delivery.
	cost := s.cfg.Model.PerMessage + s.cfg.Model.PerByte*float64(len(payload)*s.cfg.Model.BytesPerValue+extra)
	parent := s.cfg.Net.Parent(v)
	s.attempts[v]++
	s.res.EdgeAttempts[v]++
	lost := false
	if s.cfg.LossProb != nil && s.cfg.Rng.Float64() < s.cfg.LossProb[v] {
		lost = true
	}
	if lost {
		s.res.EdgeFailures[v]++
		s.chargeLoss(v, cost)
		s.em.loss(v, v, s.now, s.attempts[v], s.cfg.Model.TxShare(cost))
		if s.attempts[v] > s.cfg.MaxRetries {
			s.res.Dropped++
			s.em.drop(v, s.now)
			s.gaveUp[v] = true
			s.sent[v] = true // stop trying; parent hits its deadline
			return
		}
		s.schedule(s.now+dur*1.5, evTrySend, v)
		return
	}
	s.chargeDelivery(v, parent, len(payload), cost)
	s.em.delivered(v, len(payload), len(payload)*s.cfg.Model.BytesPerValue+extra,
		s.firstTry[v], s.now+dur, s.cfg.Model.TxShare(cost), s.cfg.Model.RxShare(cost))
	s.sent[v] = true
	s.childList[v] = payload
	s.childOK[v] = true
	s.childProv[v] = provenCnt
	s.schedule(s.now+dur, evDelivery, v)
}

// outgoing computes the node's message: its pooled values truncated to
// the edge bandwidth, plus the proven count for proof plans.
func (s *sim) outgoing(v network.NodeID) ([]exec.ValueAt, int) {
	pool := s.lists[v]
	exec.SortDesc(pool)
	send := pool
	if len(send) > s.plan.Bandwidth[v] {
		send = send[:s.plan.Bandwidth[v]]
	}
	provenCnt := 0
	if s.plan.Kind == plan.Proof {
		provenCnt = s.provenPrefix(v, send)
	}
	// The payload aliases the node's pooled list instead of copying:
	// outgoing runs only until the node's send succeeds, so the prefix
	// is never re-sorted afterwards, and straggler deliveries append
	// past it without disturbing it (capacity is pre-carved, so the
	// append cannot move the backing array either).
	return send, provenCnt
}

// onDelivery merges an arrived message into the parent and may release
// the parent's own transmission.
func (s *sim) onDelivery(v network.NodeID) {
	parent := s.cfg.Net.Parent(v)
	//alloc:amortized the pool's capacity is pre-carved to the subtree size in newSim; appends never grow
	s.lists[parent] = append(s.lists[parent], s.childList[v]...)
	if parent == network.Root {
		if s.now > s.res.Latency {
			s.res.Latency = s.now
		}
	}
	s.expected[parent]--
	if s.expected[parent] == 0 && parent != network.Root && !s.sent[parent] {
		s.schedule(s.now, evTrySend, parent)
	}
}

// mediumFreeAt returns when node v's neighborhood is next idle.
func (s *sim) mediumFreeAt(v network.NodeID) float64 {
	free := s.busyUntil[v]
	for _, nb := range s.neighborsOf(v) {
		if s.busyUntil[nb] > free {
			free = s.busyUntil[nb]
		}
	}
	return free
}

func (s *sim) occupyMedium(v network.NodeID, dur float64) {
	end := s.now + dur
	if end > s.busyUntil[v] {
		s.busyUntil[v] = end
	}
	for _, nb := range s.neighborsOf(v) {
		if end > s.busyUntil[nb] {
			s.busyUntil[nb] = end
		}
	}
}

func (s *sim) neighborsOf(v network.NodeID) []network.NodeID {
	if s.neighbors == nil {
		return nil
	}
	return s.neighbors[v]
}

// provenPrefix mirrors the proof conditions of internal/exec over the
// simulator's per-child state.
func (s *sim) provenPrefix(v network.NodeID, list []exec.ValueAt) int {
	n := 0
	for _, w := range list {
		if !s.provenAt(v, w) {
			break
		}
		n++
	}
	return n
}

func (s *sim) provenAt(v network.NodeID, w exec.ValueAt) bool {
	net := s.cfg.Net
	for _, c := range net.Children(v) {
		if !s.plan.UsesEdge(c) {
			return false // proof plans use all edges; unused => undelivered
		}
		if !s.childOK[c] {
			return false // child's message never arrived
		}
		lst := s.childList[c]
		if len(lst) == net.SubtreeSize(c) {
			continue // (c.3)
		}
		if net.IsAncestor(c, w.Node) {
			proven := s.childProv[c]
			found := false
			for i := 0; i < proven && i < len(lst); i++ {
				if lst[i].Node == w.Node {
					found = true
					break
				}
			}
			if found {
				continue // (c.1)
			}
			return false
		}
		if p := s.childProv[c]; p > 0 && w.Outranks(lst[p-1]) {
			continue // (c.2)
		}
		return false
	}
	return true
}

// finish assembles the root's answer.
func (s *sim) finish() {
	root := s.lists[network.Root]
	exec.SortDesc(root)
	seen := make(map[network.NodeID]bool, len(root))
	var out []exec.ValueAt
	for _, v := range root {
		if !seen[v.Node] {
			seen[v.Node] = true
			out = append(out, v)
		}
	}
	s.res.Returned = out
	for i, g := range s.gaveUp {
		if g {
			s.res.Abandoned = append(s.res.Abandoned, network.NodeID(i))
		}
	}
	if s.plan.Kind == plan.Proof {
		s.res.Proven = s.provenPrefix(network.Root, out)
	}
	sort.SliceStable(s.res.Returned, func(i, j int) bool {
		return s.res.Returned[i].Outranks(s.res.Returned[j])
	})
	s.em.finish(s.res.Latency, &s.res.Ledger)
}

// EstimateLossProbs aggregates per-edge failure statistics from a set
// of simulated collection phases into empirical loss probabilities:
// the inputs Section 4.4's cost inflation wants. Edges never attempted
// report probability zero.
func EstimateLossProbs(results []*Result, n int) ([]float64, error) {
	attempts := make([]int, n)
	failures := make([]int, n)
	for _, r := range results {
		if len(r.EdgeAttempts) != n || len(r.EdgeFailures) != n {
			return nil, fmt.Errorf("sim: result covers %d edges, want %d", len(r.EdgeAttempts), n)
		}
		for v := 0; v < n; v++ {
			attempts[v] += r.EdgeAttempts[v]
			failures[v] += r.EdgeFailures[v]
		}
	}
	probs := make([]float64, n)
	for v := 0; v < n; v++ {
		if attempts[v] > 0 {
			probs[v] = float64(failures[v]) / float64(attempts[v])
		}
	}
	return probs, nil
}
