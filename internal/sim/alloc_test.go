package sim

import (
	"io"
	"math/rand"
	"testing"

	"prospector/internal/obs"
	"prospector/internal/plan"
)

// TestDrainAllocFree pins the runtime half of drain's //alloc:none
// claim (and seedTriggers'): once newSim has carved the arenas and one
// epoch has warmed the event heap and the trace scratch, replaying
// epochs performs zero heap allocations — with metrics and tracing
// enabled. The medium is lossless so every epoch replays the same
// event sequence and the warm capacities are exact.
func TestDrainAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	net := randTree(rng, n)
	vals := randValues(rng, n)
	p, err := plan.NewFiltering(net, randBandwidth(rng, net, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(net)
	cfg.Obs = obs.NewRegistry()
	cfg.Trace = obs.NewTracer(io.Discard)
	s := newSim(cfg, p, vals)
	s.run() // warm: size the event heap, value pools, and trace scratch

	allocs := testing.AllocsPerRun(100, func() {
		s.reset()
		s.seedTriggers()
		s.drain()
	})
	if allocs != 0 {
		t.Fatalf("drain allocated %v times per epoch, want 0", allocs)
	}
}

// BenchmarkSimDrain measures the warmed per-epoch event loop; its
// allocs/op must stay 0 (the CI bench smoke enforces this with
// -benchmem).
func BenchmarkSimDrain(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	net := randTree(rng, n)
	vals := randValues(rng, n)
	p, err := plan.NewFiltering(net, randBandwidth(rng, net, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(net)
	s := newSim(cfg, p, vals)
	s.run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.reset()
		s.seedTriggers()
		s.drain()
	}
}
