package experiments

import (
	"fmt"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/sim"
	"prospector/internal/stats"
	"prospector/internal/workload"
)

// SpatialConfig scales the spatial-correlation extension study.
type SpatialStudyConfig struct {
	Nodes        int
	K            int
	Samples      int
	Eval         int
	Trials       int
	Seed         int64
	BudgetFrac   float64
	LengthScales []float64 // 0 means the independent field
}

// DefaultSpatialStudyConfig sweeps correlation from none to strong.
func DefaultSpatialStudyConfig() SpatialStudyConfig {
	return SpatialStudyConfig{
		Nodes:        60,
		K:            12,
		Samples:      15,
		Eval:         10,
		Trials:       3,
		Seed:         8,
		BudgetFrac:   0.3,
		LengthScales: []float64{0, 5, 12, 25, 50},
	}
}

// SpatialStudy (extension beyond the paper) examines how spatial
// correlation — the setting the model-driven line of work assumes —
// affects the sampling-based planners. Correlated readings concentrate
// each epoch's top k in a region that shifts between epochs, a pattern
// samples capture only partially; the study measures how each planner
// degrades as the correlation length grows.
func SpatialStudy(cfg SpatialStudyConfig) (*Result, error) {
	aggs := map[string]*aggregate{
		"Greedy": newAggregate(), "LP-LF": newAggregate(), "LP+LF": newAggregate(),
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		for _, ls := range cfg.LengthScales {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*87178291))
			net, err := network.Build(network.DefaultBuildConfig(cfg.Nodes), rng)
			if err != nil {
				return nil, err
			}
			var src workload.Source
			if ls == 0 {
				g, err := workload.NewGaussianField(workload.DefaultGaussianConfig(cfg.Nodes), rng)
				if err != nil {
					return nil, err
				}
				g.SetStdDev(4) // match the spatial field's marginal spread
				src = g
			} else {
				pos := make([]network.Point, cfg.Nodes)
				for i := range pos {
					pos[i] = net.Pos(network.NodeID(i))
				}
				scfg := workload.DefaultSpatialConfig(pos)
				scfg.LengthScale = ls
				s, err := workload.NewSpatialField(scfg, rng)
				if err != nil {
					return nil, err
				}
				src = s
			}
			set := sample.MustNewSet(cfg.Nodes, cfg.K, 0)
			if err := set.AddAll(workload.Draw(src, cfg.Samples)); err != nil {
				return nil, err
			}
			costs := plan.NewCosts(net, energy.DefaultModel())
			s := newScenario(
				core.Config{Net: net, Costs: costs, Samples: set, K: cfg.K},
				exec.Env{Net: net, Costs: costs},
				workload.Draw(src, cfg.Eval),
			)
			naive, err := s.naiveKCost(cfg.K)
			if err != nil {
				return nil, err
			}
			budget := cfg.BudgetFrac * naive
			planners := []core.Planner{}
			if g, err := core.NewGreedy(s.cfg); err == nil {
				planners = append(planners, g)
			} else {
				return nil, err
			}
			if l, err := core.NewLPNoFilter(s.cfg); err == nil {
				planners = append(planners, l)
			} else {
				return nil, err
			}
			if f, err := core.NewLPFilter(s.cfg); err == nil {
				planners = append(planners, f)
			} else {
				return nil, err
			}
			for _, pl := range planners {
				p, err := pl.Plan(budget)
				if err != nil {
					return nil, err
				}
				_, acc, err := s.evaluate(p)
				if err != nil {
					return nil, err
				}
				aggs[pl.Name()].add(ls, 0, acc)
			}
		}
	}
	res := &Result{
		ID:     "spatial",
		Title:  "Extension: spatial correlation sweep",
		XLabel: "correlation length (m; 0 = independent)",
		YLabel: "accuracy (% of top k)",
		Notes: []string{
			fmt.Sprintf("nodes=%d k=%d budget=%.0f%% of Naive-k trials=%d",
				cfg.Nodes, cfg.K, 100*cfg.BudgetFrac, cfg.Trials),
			"correlated fields move the hot region between epochs; accuracy under a fixed budget drops as correlation grows",
		},
	}
	for _, name := range []string{"LP+LF", "LP-LF", "Greedy"} {
		res.Series = append(res.Series, Series{Name: name, Points: aggs[name].xValuePoints()})
	}
	return res, nil
}

// LossyMediumConfig scales the lossy-medium extension study.
type LossyMediumConfig struct {
	Nodes      int
	K          int
	Samples    int
	Eval       int
	Trials     int
	Seed       int64
	BudgetFrac float64
	LossProbs  []float64 // uniform per-edge loss levels to sweep
}

// DefaultLossyMediumConfig sweeps loss from none to severe.
func DefaultLossyMediumConfig() LossyMediumConfig {
	return LossyMediumConfig{
		Nodes:      50,
		K:          10,
		Samples:    12,
		Eval:       8,
		Trials:     3,
		Seed:       9,
		BudgetFrac: 0.35,
		LossProbs:  []float64{0, 0.1, 0.25, 0.45},
	}
}

// LossyMediumStudy (extension beyond the paper) replays the planner
// comparison through the discrete-event simulator with a lossy medium:
// retransmissions inflate energy and dropped messages cost accuracy.
// The paper's qualitative ranking should survive a realistic radio.
func LossyMediumStudy(cfg LossyMediumConfig) (*Result, error) {
	accAgg := map[string]*aggregate{"LP+LF": newAggregate(), "Naive-k": newAggregate()}
	costAgg := map[string]*aggregate{"LP+LF": newAggregate(), "Naive-k": newAggregate()}
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*472882027))
		s, err := gaussianScenario(cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, 0, rng)
		if err != nil {
			return nil, err
		}
		naive, err := s.naiveKCost(cfg.K)
		if err != nil {
			return nil, err
		}
		lf, err := core.NewLPFilter(s.cfg)
		if err != nil {
			return nil, err
		}
		lfPlan, err := lf.Plan(cfg.BudgetFrac * naive)
		if err != nil {
			return nil, err
		}
		nkPlan, err := core.NaiveKPlan(s.cfg.Net, cfg.K)
		if err != nil {
			return nil, err
		}
		for _, loss := range cfg.LossProbs {
			simCfg := sim.DefaultConfig(s.cfg.Net)
			if loss > 0 {
				probs := make([]float64, s.cfg.Net.Size())
				for i := range probs {
					probs[i] = loss
				}
				simCfg.LossProb = probs
				simCfg.Rng = rand.New(rand.NewSource(cfg.Seed + int64(trial) + int64(loss*1000)))
			}
			for name, p := range map[string]*plan.Plan{"LP+LF": lfPlan, "Naive-k": nkPlan} {
				cost, acc := 0.0, 0.0
				for _, vals := range s.truth {
					res, err := sim.Run(simCfg, p, vals)
					if err != nil {
						return nil, err
					}
					cost += res.Ledger.Total()
					acc += exec.Accuracy(res.Returned, vals, cfg.K)
				}
				n := float64(len(s.truth))
				accAgg[name].add(loss, cost/n, 100*acc/n)
				costAgg[name].add(loss, cost/n, 0)
			}
		}
	}
	res := &Result{
		ID:     "lossymedium",
		Title:  "Extension: planners on a lossy radio medium (discrete-event sim)",
		XLabel: "per-link loss probability",
		YLabel: "accuracy (% of top k)",
		Notes: []string{
			fmt.Sprintf("nodes=%d k=%d budget=%.0f%% of Naive-k trials=%d",
				cfg.Nodes, cfg.K, 100*cfg.BudgetFrac, cfg.Trials),
		},
	}
	for _, name := range []string{"LP+LF", "Naive-k"} {
		res.Series = append(res.Series, Series{Name: name, Points: accAgg[name].xValuePoints()})
	}
	for _, name := range []string{"LP+LF", "Naive-k"} {
		pts := costAgg[name].xCostPoints()
		res.Series = append(res.Series, Series{Name: name + " mJ", Points: pts})
	}
	return res, nil
}

// NaiveTradeoffConfig scales the naive-family tradeoff study.
type NaiveTradeoffConfig struct {
	Nodes   int
	K       int
	Eval    int
	Trials  int
	Seed    int64
	Batches []int
}

// DefaultNaiveTradeoffConfig sweeps the batch size from NAIVE-1 to
// beyond k.
func DefaultNaiveTradeoffConfig() NaiveTradeoffConfig {
	return NaiveTradeoffConfig{
		Nodes:   60,
		K:       10,
		Eval:    8,
		Trials:  3,
		Seed:    10,
		Batches: []int{1, 2, 3, 5, 10, 20},
	}
}

// NaiveTradeoffStudy quantifies Section 2's stated tradeoff between the
// two naive exact algorithms: NAIVE-1 minimizes values transmitted at a
// prohibitive per-message overhead, NAIVE-k minimizes messages but
// ships many wasted values. The batched generalization exec.NaiveBatch
// interpolates; the study reports total energy, messages, and values
// per batch size, alongside the NAIVE-k endpoint.
func NaiveTradeoffStudy(cfg NaiveTradeoffConfig) (*Result, error) {
	eAgg := newAggregate()
	mAgg := newAggregate()
	vAgg := newAggregate()
	var nkEnergy []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*122949829))
		s, err := gaussianScenario(cfg.Nodes, cfg.K, 3, cfg.Eval, 0, rng)
		if err != nil {
			return nil, err
		}
		nk, err := core.NaiveKPlan(s.cfg.Net, cfg.K)
		if err != nil {
			return nil, err
		}
		for _, vals := range s.truth {
			res, err := exec.Run(s.env, nk, vals)
			if err != nil {
				return nil, err
			}
			nkEnergy = append(nkEnergy, res.Ledger.Total())
		}
		for _, batch := range cfg.Batches {
			for _, vals := range s.truth {
				res, err := exec.NaiveBatch(s.env, vals, cfg.K, batch)
				if err != nil {
					return nil, err
				}
				x := float64(batch)
				eAgg.add(x, res.Ledger.Total(), 0)
				mAgg.add(x, float64(res.Ledger.Messages), 0)
				vAgg.add(x, float64(res.Ledger.Values), 0)
			}
		}
	}
	res := &Result{
		ID:     "naivetradeoff",
		Title:  "Extension: the NAIVE-1 ... NAIVE-k tradeoff, interpolated",
		XLabel: "batch size (values per request)",
		YLabel: "energy (mJ) / messages / values",
		Series: []Series{
			{Name: "energy mJ", Points: eAgg.xCostPoints()},
			{Name: "messages", Points: mAgg.xCostPoints()},
			{Name: "values", Points: vAgg.xCostPoints()},
		},
		Notes: []string{
			fmt.Sprintf("nodes=%d k=%d trials=%d", cfg.Nodes, cfg.K, cfg.Trials),
			fmt.Sprintf("single-pass NAIVE-k endpoint: %.1f mJ", stats.Mean(nkEnergy)),
			"expected shape: messages fall and values rise with batch size; energy bottoms out at a mid batch but stays above single-pass NAIVE-k (request round-trips never amortize fully)",
		},
	}
	return res, nil
}
