package experiments

import (
	"fmt"
	"math"
	"strings"
)

// plotGlyphs mark series points in Plot output, assigned in series
// order; overlapping points show the later series' glyph.
var plotGlyphs = []byte{'o', '+', 'x', '*', '#', '@', '%', '&'}

// Plot renders the result as an ASCII scatter chart, one glyph per
// series, with axes and a legend — enough to eyeball the shapes the
// paper's figures show without leaving the terminal.
func (r *Result) Plot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range r.Series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
			points++
		}
	}
	if points == 0 {
		return fmt.Sprintf("== %s: %s ==\n(no data)\n", r.ID, r.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Pad the y range slightly so extremes are not on the frame.
	pad := (maxY - minY) * 0.05
	minY, maxY = minY-pad, maxY+pad

	grid := make([][]byte, height)
	for row := range grid {
		grid[row] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range r.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for _, p := range s.Points {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			if col < 0 {
				col = 0
			}
			if col >= width {
				col = width - 1
			}
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = glyph
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	label := len(yTop)
	if len(yBot) > label {
		label = len(yBot)
	}
	for row := range grid {
		switch row {
		case 0:
			fmt.Fprintf(&b, "%*s |%s\n", label, yTop, grid[row])
		case height - 1:
			fmt.Fprintf(&b, "%*s |%s\n", label, yBot, grid[row])
		default:
			fmt.Fprintf(&b, "%*s |%s\n", label, "", grid[row])
		}
	}
	fmt.Fprintf(&b, "%*s +%s\n", label, "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%*s  %-*.4g%*.4g\n", label, "", width/2, minX, width-width/2, maxX)
	fmt.Fprintf(&b, "%*s  x: %s, y: %s\n", label, "", r.XLabel, r.YLabel)
	var legend []string
	for si, s := range r.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%*s  %s\n", label, "", strings.Join(legend, "  "))
	return b.String()
}
