package experiments

import (
	"fmt"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/stats"
)

// SampleSizeConfig scales the sampling-size study.
type SampleSizeConfig struct {
	Nodes        int
	K            int
	Eval         int
	Trials       int
	Seed         int64
	SampleCounts []int
	BudgetFrac   float64
}

// DefaultSampleSizeConfig mirrors the paper's in-text study.
func DefaultSampleSizeConfig() SampleSizeConfig {
	return SampleSizeConfig{
		Nodes:        60,
		K:            12,
		Eval:         10,
		Trials:       3,
		Seed:         6,
		SampleCounts: []int{1, 2, 3, 5, 8, 12, 18, 25, 35, 50},
		BudgetFrac:   0.3,
	}
}

// SampleSizeStudy regenerates the paper's in-text sampling-size result:
// accuracy against the number of samples used for planning. Expected
// shape: a single sample performs very poorly; accuracy climbs steeply
// up to ~10-15 samples and levels out by ~25-30 — confirming the
// polynomial sample bound of Section 3.1 is loose in practice.
func SampleSizeStudy(cfg SampleSizeConfig) (*Result, error) {
	agg := newAggregate()
	// All (trial, sample-count) cells are independent; run them
	// concurrently.
	cells := cfg.Trials * len(cfg.SampleCounts)
	err := runTrials(cells, func(cell int, record func(func())) error {
		trial := cell / len(cfg.SampleCounts)
		n := cfg.SampleCounts[cell%len(cfg.SampleCounts)]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*179424673))
		s, err := gaussianScenario(cfg.Nodes, cfg.K, n, cfg.Eval, 0, rng)
		if err != nil {
			return err
		}
		naive, err := s.naiveKCost(cfg.K)
		if err != nil {
			return err
		}
		lf, err := core.NewLPFilter(s.cfg)
		if err != nil {
			return err
		}
		p, err := lf.Plan(cfg.BudgetFrac * naive)
		if err != nil {
			return err
		}
		_, acc, err := s.evaluate(p)
		if err != nil {
			return err
		}
		record(func() { agg.add(float64(n), 0, acc) })
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "samplesize",
		Title:  "Accuracy vs number of samples (LP+LF)",
		XLabel: "samples",
		YLabel: "accuracy (% of top k)",
		Series: []Series{{Name: "LP+LF", Points: agg.xValuePoints()}},
		Notes: []string{
			fmt.Sprintf("nodes=%d k=%d budget=%.0f%% of Naive-k", cfg.Nodes, cfg.K, 100*cfg.BudgetFrac),
			"expected shape: 1 sample poor; steep climb to ~10-15; level by ~25-30",
		},
	}, nil
}

// InstallCostConfig scales the plan-dissemination cost study.
type InstallCostConfig struct {
	Nodes       int
	K           int
	Samples     int
	Trials      int
	Seed        int64
	BudgetFracs []float64
}

// DefaultInstallCostConfig matches the paper's in-text claim setup.
func DefaultInstallCostConfig() InstallCostConfig {
	return InstallCostConfig{
		Nodes:       60,
		K:           12,
		Samples:     15,
		Trials:      3,
		Seed:        7,
		BudgetFracs: []float64{0.15, 0.3, 0.5},
	}
}

// InstallCostStudy regenerates the paper's in-text claim that the
// initial distribution phase (unicasting subplans to every node in the
// plan) costs on the order of one collection phase, so it amortizes
// away under install-once run-many usage.
func InstallCostStudy(cfg InstallCostConfig) (*Result, error) {
	aggInstall := newAggregate()
	aggCollect := newAggregate()
	var ratios []float64
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*15487469))
		s, err := gaussianScenario(cfg.Nodes, cfg.K, cfg.Samples, 2, 0, rng)
		if err != nil {
			return nil, err
		}
		naive, err := s.naiveKCost(cfg.K)
		if err != nil {
			return nil, err
		}
		lf, err := core.NewLPFilter(s.cfg)
		if err != nil {
			return nil, err
		}
		for _, frac := range cfg.BudgetFracs {
			p, err := lf.Plan(frac * naive)
			if err != nil {
				return nil, err
			}
			install := p.InstallCost(s.cfg.Net, s.cfg.Costs)
			collect := p.CollectionCost(s.cfg.Net, s.cfg.Costs) + p.TriggerCost(s.cfg.Net, s.cfg.Costs)
			aggInstall.add(frac, install, 0)
			aggCollect.add(frac, collect, 0)
			if collect > 0 {
				ratios = append(ratios, install/collect)
			}
		}
	}
	return &Result{
		ID:     "installcost",
		Title:  "Plan dissemination vs collection cost (LP+LF)",
		XLabel: "budget (fraction of Naive-k)",
		YLabel: "energy (mJ)",
		Series: []Series{
			{Name: "Install", Points: aggInstall.xCostPoints()},
			{Name: "Collect", Points: aggCollect.xCostPoints()},
		},
		Notes: []string{
			fmt.Sprintf("mean install/collect ratio %.2f (paper: \"on the order of one collection phase\")",
				stats.Mean(ratios)),
		},
	}, nil
}
