package experiments

import (
	"fmt"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/exec"
	"prospector/internal/stats"
)

// Figure8Config scales the PROSPECTOR EXACT experiment.
type Figure8Config struct {
	Nodes   int
	K       int
	Samples int
	Eval    int
	Trials  int
	Seed    int64
	// BudgetMults are the phase-1 budgets as multiples of the minimum
	// proof-plan cost — the "trial instances" of the paper's x axis.
	BudgetMults []float64
}

// DefaultFigure8Config keeps the PROOF linear program at a size the
// pure-Go simplex solves in seconds (the paper reports CPLEX itself
// needed up to ~100 s here).
func DefaultFigure8Config() Figure8Config {
	return Figure8Config{
		Nodes:       36,
		K:           8,
		Samples:     8,
		Eval:        8,
		Trials:      2,
		Seed:        4,
		BudgetMults: []float64{1.02, 1.1, 1.2, 1.35, 1.5, 1.7, 1.9},
	}
}

// Figure8 regenerates the paper's Figure 8: PROSPECTOR EXACT's
// phase-1/phase-2 cost breakdown across phase-1 budget levels, against
// the NAIVE-k and ORACLE PROOF horizontal baselines. Expected shape:
// with a small phase 1 the mop-up is expensive; with a large phase 1
// the first phase over-acquires; the optimum sits in the middle,
// realizing a large part of the NAIVE-k -> ORACLE PROOF gap.
func Figure8(cfg Figure8Config) (*Result, error) {
	phase1 := newAggregate()
	phase2 := newAggregate()
	var naiveCosts, oracleCosts []float64
	// Trials (and within them, budget levels) are independent; run them
	// concurrently — the PROOF programs dominate this figure's runtime.
	err := runTrials(cfg.Trials, func(trial int, record func(func())) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*49979687))
		s, err := gaussianScenario(cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, 0, rng)
		if err != nil {
			return err
		}
		nv, err := s.naiveKCost(cfg.K)
		if err != nil {
			return err
		}
		record(func() { naiveCosts = append(naiveCosts, nv) })
		// ORACLE PROOF per evaluation epoch.
		for _, vals := range s.truth {
			op, err := core.OracleProofPlan(s.cfg.Net, vals, cfg.K)
			if err != nil {
				return err
			}
			res, err := exec.Run(s.env, op, vals)
			if err != nil {
				return err
			}
			record(func() { oracleCosts = append(oracleCosts, res.Ledger.Total()) })
		}
		ex, err := core.NewExact(s.cfg)
		if err != nil {
			return err
		}
		min := ex.MinPhase1Budget()
		// The budget levels run serially as one warm basis chain: the
		// planner caches its parametric PROOF program across Plan calls
		// (which also makes it unsafe to share across goroutines), and a
		// chained re-solve per level is cheaper than the concurrent cold
		// solves this loop used before.
		for i := range cfg.BudgetMults {
			p, err := ex.Planner().Plan(min * cfg.BudgetMults[i])
			if err != nil {
				return err
			}
			c1, c2 := 0.0, 0.0
			for _, vals := range s.truth {
				res, err := ex.RunWithPlan(s.env, p, vals)
				if err != nil {
					return err
				}
				c1 += res.Phase1.Total()
				c2 += res.Phase2.Total()
			}
			n := float64(len(s.truth))
			instance := float64(i + 1)
			record(func() {
				phase1.add(instance, c1/n, 0)
				phase2.add(instance, c2/n, 0)
			})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "figure8",
		Title:  "ProspectorExact: two-phase cost breakdown",
		XLabel: "trial instance (phase-1 budget level)",
		YLabel: "energy cost (mJ)",
		Series: []Series{
			{Name: "Phase1", Points: phase1.xCostPoints()},
			{Name: "Phase2", Points: phase2.xCostPoints()},
		},
	}
	// Total series plus the two horizontal baselines.
	p1 := phase1.xCostPoints()
	p2 := phase2.xCostPoints()
	var total []Point
	bestTotal := -1.0
	for i := range p1 {
		t := p1[i].Y + p2[i].Y
		total = append(total, Point{X: p1[i].X, Y: t})
		if bestTotal < 0 || t < bestTotal {
			bestTotal = t
		}
	}
	res.Series = append(res.Series, Series{Name: "Total", Points: total})
	nk := stats.Mean(naiveCosts)
	op := stats.Mean(oracleCosts)
	var nkLine, opLine []Point
	for i := range p1 {
		nkLine = append(nkLine, Point{X: p1[i].X, Y: nk})
		opLine = append(opLine, Point{X: p1[i].X, Y: op})
	}
	res.Series = append(res.Series,
		Series{Name: "Naive-k", Points: nkLine},
		Series{Name: "OracleProof", Points: opLine})
	realized := 0.0
	if nk > op {
		realized = (nk - bestTotal) / (nk - op)
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("nodes=%d k=%d samples=%d trials=%d", cfg.Nodes, cfg.K, cfg.Samples, cfg.Trials),
		fmt.Sprintf("best Exact total %.1f realizes %.0f%% of the Naive-k (%.1f) -> OracleProof (%.1f) gap",
			bestTotal, 100*realized, nk, op),
		"expected shape: U-shaped total; optimum mid-range; paper reports ~50% of the gap realized")
	return res, nil
}
