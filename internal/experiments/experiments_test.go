package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Tiny configs keep the full pipelines fast enough for go test while
// still exercising every code path end to end.

func tinyFigure3() Figure3Config {
	return Figure3Config{
		Nodes: 30, K: 6, Samples: 8, Eval: 4, Trials: 1, Seed: 101,
		BudgetFracs:   []float64{0.1, 0.3, 0.6},
		AccuracySteps: []float64{0.5, 1.0},
	}
}

func TestFigure3Shape(t *testing.T) {
	res, err := Figure3(tinyFigure3())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("%d series", len(res.Series))
	}
	byName := map[string][]Point{}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Errorf("series %s empty", s.Name)
		}
		byName[s.Name] = s.Points
	}
	// Naive-k at full accuracy must cost more than any approximate
	// planner's most expensive point.
	naiveMax := maxX(byName["Naive-k"])
	for _, name := range []string{"Greedy", "LP-LF", "LP+LF"} {
		if maxX(byName[name]) >= naiveMax {
			t.Errorf("%s max cost %.1f not below Naive-k %.1f", name, maxX(byName[name]), naiveMax)
		}
	}
	// Oracle's full-accuracy point is the cheapest 100%-accuracy cost.
	if maxX(byName["Oracle"]) >= naiveMax {
		t.Errorf("Oracle cost %.1f not below Naive-k %.1f", maxX(byName["Oracle"]), naiveMax)
	}
}

func maxX(pts []Point) float64 {
	m := 0.0
	for _, p := range pts {
		if p.X > m {
			m = p.X
		}
	}
	return m
}

func TestFigure4Shape(t *testing.T) {
	cfg := Figure4Config{
		Nodes: 24, K: 5, Samples: 8, Eval: 4, Trials: 1, Seed: 102,
		StdDevs: []float64{0.25, 4, 12}, BudgetFrac: 0.35,
	}
	res, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Points) != 3 {
			t.Errorf("series %s has %d points", s.Name, len(s.Points))
		}
		// Low variance must beat the highest variance setting.
		if s.Points[0].Y < s.Points[len(s.Points)-1].Y {
			t.Errorf("series %s: accuracy rises with variance (%v)", s.Name, s.Points)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	cfg := ZonesConfig{
		Zones: 3, K: 5, Background: 10, Samples: 8, Eval: 5, Trials: 1, Seed: 103,
		Territorial: true,
		BudgetFracs: []float64{0.15, 0.4},
	}
	res, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("%d series", len(res.Series))
	}
	// At the larger budget LP+LF should not lose to LP-LF.
	lf := res.Series[0].Points
	no := res.Series[1].Points
	if lf[len(lf)-1].Y < no[len(no)-1].Y-5 {
		t.Errorf("LP+LF %.1f%% clearly below LP-LF %.1f%% under contention", lf[len(lf)-1].Y, no[len(no)-1].Y)
	}
}

func TestFigure7Shape(t *testing.T) {
	cfg := ZonesConfig{
		Zones: 3, K: 4, Background: 8, Samples: 6, Eval: 4, Trials: 1, Seed: 104,
		Territorial:     true,
		FixedBudgetFrac: 0.3,
	}
	res, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Points) != 5 {
			t.Errorf("series %s has %d points, want 5 zone counts", s.Name, len(s.Points))
		}
	}
}

func TestFigure8Shape(t *testing.T) {
	cfg := Figure8Config{
		Nodes: 18, K: 4, Samples: 5, Eval: 4, Trials: 1, Seed: 105,
		BudgetMults: []float64{1.05, 1.4, 1.8},
	}
	res, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string][]Point{}
	for _, s := range res.Series {
		names[s.Name] = s.Points
	}
	for _, want := range []string{"Phase1", "Phase2", "Total", "Naive-k", "OracleProof"} {
		if len(names[want]) == 0 {
			t.Errorf("missing series %s", want)
		}
	}
	// Phase-1 cost must not shrink with more budget (it saturates once
	// the samples are fully provable); phase-2 cost must not grow.
	p1, p2 := names["Phase1"], names["Phase2"]
	if p1[0].Y > p1[len(p1)-1].Y+1 {
		t.Errorf("phase-1 cost fell across budgets: %v", p1)
	}
	if p2[0].Y < p2[len(p2)-1].Y-1 {
		t.Errorf("phase-2 cost rose across budgets: %v", p2)
	}
	// OracleProof lower-bounds every Exact total.
	op := names["OracleProof"][0].Y
	for _, p := range names["Total"] {
		if p.Y < op-1e-6 {
			t.Errorf("Exact total %.1f below OracleProof %.1f", p.Y, op)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	cfg := DefaultFigure9Config()
	cfg.Trials = 1
	cfg.Lab.Epochs = 60
	cfg.SampleEpochs = 20
	cfg.SampleWindow = 10
	cfg.Eval = 10
	cfg.BudgetFracs = []float64{0.1, 0.3, 0.5}
	res, err := Figure9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	// LP+LF and LP-LF nearly identical on this data (paper's finding);
	// allow a modest tolerance at tiny scale.
	byName := map[string][]Point{}
	for _, s := range res.Series {
		byName[s.Name] = s.Points
	}
	lf, no := byName["LP+LF"], byName["LP-LF"]
	for i := range lf {
		if diff := lf[i].Y - no[i].Y; diff < -25 || diff > 25 {
			t.Errorf("point %d: LP+LF %.1f vs LP-LF %.1f diverge sharply", i, lf[i].Y, no[i].Y)
		}
	}
}

func TestSampleSizeStudyShape(t *testing.T) {
	cfg := SampleSizeConfig{
		Nodes: 24, K: 5, Eval: 5, Trials: 2, Seed: 106,
		SampleCounts: []int{1, 8, 25}, BudgetFrac: 0.35,
	}
	res, err := SampleSizeStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// One sample should not beat twenty-five.
	if pts[0].Y > pts[2].Y+10 {
		t.Errorf("1 sample (%.1f%%) beat 25 samples (%.1f%%)", pts[0].Y, pts[2].Y)
	}
}

func TestInstallCostStudyShape(t *testing.T) {
	cfg := InstallCostConfig{
		Nodes: 24, K: 5, Samples: 8, Trials: 1, Seed: 107,
		BudgetFracs: []float64{0.2, 0.4},
	}
	res, err := InstallCostStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("%d series", len(res.Series))
	}
	// Install should be within an order of magnitude of collection.
	in := res.Series[0].Points
	co := res.Series[1].Points
	for i := range in {
		if in[i].Y > 3*co[i].Y {
			t.Errorf("install %.1f far above collection %.1f", in[i].Y, co[i].Y)
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	res := &Result{
		ID: "demo", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 2}, {3, 4}}},
			{Name: "b", Points: []Point{{1, 5}}},
		},
		Notes: []string{"hello"},
	}
	out := res.Render()
	for _, want := range []string{"demo", "a", "b", "hello", "2.000", "5.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.HasPrefix(csv, "series,x,y\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "a,1,2\n") || !strings.Contains(csv, "b,1,5\n") {
		t.Errorf("csv rows wrong: %q", csv)
	}
}

func TestPlot(t *testing.T) {
	res := &Result{
		ID: "p", Title: "plot demo", XLabel: "cost", YLabel: "acc",
		Series: []Series{
			{Name: "a", Points: []Point{{0, 0}, {10, 100}}},
			{Name: "b", Points: []Point{{5, 50}}},
		},
	}
	out := res.Plot(40, 10)
	for _, want := range []string{"plot demo", "o", "+", "a", "b", "cost", "acc"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 13 {
		t.Errorf("plot has %d lines", len(lines))
	}
	// Empty result does not panic.
	empty := &Result{ID: "e", Title: "empty"}
	if !strings.Contains(empty.Plot(30, 8), "no data") {
		t.Error("empty plot missing placeholder")
	}
	// Degenerate single point.
	one := &Result{ID: "1", Title: "one", Series: []Series{{Name: "s", Points: []Point{{3, 3}}}}}
	if !strings.Contains(one.Plot(30, 8), "o") {
		t.Error("single-point plot missing glyph")
	}
}

func TestSpatialStudyShape(t *testing.T) {
	cfg := SpatialStudyConfig{
		Nodes: 24, K: 5, Samples: 8, Eval: 4, Trials: 1, Seed: 108,
		BudgetFrac: 0.35, LengthScales: []float64{0, 20},
	}
	res, err := SpatialStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Errorf("series %s has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 100 {
				t.Errorf("series %s accuracy %g out of range", s.Name, p.Y)
			}
		}
	}
}

func TestLossyMediumStudyShape(t *testing.T) {
	cfg := LossyMediumConfig{
		Nodes: 20, K: 4, Samples: 6, Eval: 3, Trials: 1, Seed: 109,
		BudgetFrac: 0.4, LossProbs: []float64{0, 0.4},
	}
	res, err := LossyMediumStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]Point{}
	for _, s := range res.Series {
		byName[s.Name] = s.Points
	}
	// Loss must not make Naive-k cheaper.
	nk := byName["Naive-k mJ"]
	if len(nk) != 2 || nk[1].Y <= nk[0].Y {
		t.Errorf("Naive-k cost did not rise with loss: %v", nk)
	}
	// Naive-k at zero loss is exact.
	if byName["Naive-k"][0].Y < 99.9 {
		t.Errorf("lossless Naive-k accuracy %.1f", byName["Naive-k"][0].Y)
	}
	// Accuracy at heavy loss must not exceed the lossless level by
	// more than noise.
	for _, name := range []string{"LP+LF", "Naive-k"} {
		pts := byName[name]
		if pts[1].Y > pts[0].Y+10 {
			t.Errorf("%s accuracy rose under loss: %v", name, pts)
		}
	}
}

func TestNaiveTradeoffStudyShape(t *testing.T) {
	cfg := NaiveTradeoffConfig{
		Nodes: 25, K: 5, Eval: 3, Trials: 1, Seed: 110,
		Batches: []int{1, 2, 5},
	}
	res, err := NaiveTradeoffStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]Point{}
	for _, s := range res.Series {
		byName[s.Name] = s.Points
	}
	msgs := byName["messages"]
	if len(msgs) != 3 {
		t.Fatalf("%d message points", len(msgs))
	}
	// Messages fall with batch size; values do not fall.
	if msgs[0].Y < msgs[len(msgs)-1].Y {
		t.Errorf("messages rose with batch: %v", msgs)
	}
	vals := byName["values"]
	if vals[0].Y > vals[len(vals)-1].Y {
		t.Errorf("values fell with batch: %v", vals)
	}
	// Batch=1 energy dominates (the paper: NAIVE-1 overhead is prohibitive).
	en := byName["energy mJ"]
	if en[0].Y < en[len(en)-1].Y {
		t.Errorf("energy rose with batch: %v", en)
	}
}

func TestDefaultConfigsAreSane(t *testing.T) {
	// The default configs drive cmd/experiments; catch accidental
	// zero-field regressions without running them at full scale.
	f3 := DefaultFigure3Config()
	if f3.Nodes < f3.K || f3.Trials < 1 || len(f3.BudgetFracs) == 0 || len(f3.AccuracySteps) == 0 {
		t.Errorf("figure3 defaults: %+v", f3)
	}
	f4 := DefaultFigure4Config()
	if f4.Nodes < f4.K || len(f4.StdDevs) == 0 || f4.BudgetFrac <= 0 {
		t.Errorf("figure4 defaults: %+v", f4)
	}
	z := DefaultZonesConfig()
	if z.Zones < 2 || z.K < 1 || len(z.BudgetFracs) == 0 || z.FixedBudgetFrac <= 0 {
		t.Errorf("zones defaults: %+v", z)
	}
	f8 := DefaultFigure8Config()
	if f8.Nodes < f8.K || len(f8.BudgetMults) == 0 {
		t.Errorf("figure8 defaults: %+v", f8)
	}
	f9 := DefaultFigure9Config()
	if f9.K < 1 || f9.SampleEpochs < f9.SampleWindow || f9.Lab.Motes != 54 {
		t.Errorf("figure9 defaults: %+v", f9)
	}
	ss := DefaultSampleSizeConfig()
	if len(ss.SampleCounts) == 0 || ss.SampleCounts[0] != 1 {
		t.Errorf("samplesize defaults: %+v", ss)
	}
	ic := DefaultInstallCostConfig()
	if len(ic.BudgetFracs) == 0 {
		t.Errorf("installcost defaults: %+v", ic)
	}
	sp := DefaultSpatialStudyConfig()
	if len(sp.LengthScales) == 0 || sp.LengthScales[0] != 0 {
		t.Errorf("spatial defaults: %+v", sp)
	}
	lm := DefaultLossyMediumConfig()
	if len(lm.LossProbs) == 0 || lm.LossProbs[0] != 0 {
		t.Errorf("lossymedium defaults: %+v", lm)
	}
	nt := DefaultNaiveTradeoffConfig()
	if len(nt.Batches) == 0 || nt.Batches[0] != 1 {
		t.Errorf("naivetradeoff defaults: %+v", nt)
	}
}
