package experiments

import (
	"fmt"
	"math/rand"

	"prospector/internal/core"
)

// Figure4Config scales the variance-sweep experiment.
type Figure4Config struct {
	Nodes   int
	K       int
	Samples int
	Eval    int
	Trials  int
	Seed    int64
	StdDevs []float64
	// BudgetFrac (of NAIVE-k's executed cost) is fixed across the
	// sweep, calibrated so LP+LF reaches near-perfect accuracy at the
	// lowest variance.
	BudgetFrac float64
}

// DefaultFigure4Config mirrors the paper's setup: means from a small
// range, variance swept from "top-k is predictable" to "everyone is
// equally likely".
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{
		Nodes:      60,
		K:          12,
		Samples:    15,
		Eval:       10,
		Trials:     3,
		Seed:       2,
		StdDevs:    []float64{0.25, 0.75, 1.5, 2.5, 4, 6, 9, 12},
		BudgetFrac: 0.3,
	}
}

// Figure4 regenerates the paper's Figure 4: accuracy against reading
// variance for LP+LF and LP-LF at a fixed energy budget. Expected
// shape: identical at low variance, both degrade as variance grows with
// LP-LF degrading faster, then both level out once means are diluted.
func Figure4(cfg Figure4Config) (*Result, error) {
	aggLF := newAggregate()
	aggNo := newAggregate()
	for trial := 0; trial < cfg.Trials; trial++ {
		for _, sd := range cfg.StdDevs {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*104729))
			s, err := gaussianScenario(cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, sd, rng)
			if err != nil {
				return nil, err
			}
			naive, err := s.naiveKCost(cfg.K)
			if err != nil {
				return nil, err
			}
			budget := cfg.BudgetFrac * naive
			lf, err := core.NewLPFilter(s.cfg)
			if err != nil {
				return nil, err
			}
			pf, err := lf.Plan(budget)
			if err != nil {
				return nil, err
			}
			_, accF, err := s.evaluate(pf)
			if err != nil {
				return nil, err
			}
			aggLF.add(sd, 0, accF)

			nolf, err := core.NewLPNoFilter(s.cfg)
			if err != nil {
				return nil, err
			}
			pn, err := nolf.Plan(budget)
			if err != nil {
				return nil, err
			}
			_, accN, err := s.evaluate(pn)
			if err != nil {
				return nil, err
			}
			aggNo.add(sd, 0, accN)
		}
	}
	return &Result{
		ID:     "figure4",
		Title:  "Effect of variance",
		XLabel: "reading std deviation",
		YLabel: "accuracy (% of top k)",
		Series: []Series{
			{Name: "LP+LF", Points: aggLF.xValuePoints()},
			{Name: "LP-LF", Points: aggNo.xValuePoints()},
		},
		Notes: []string{
			fmt.Sprintf("nodes=%d k=%d budget=%.0f%% of Naive-k", cfg.Nodes, cfg.K, 100*cfg.BudgetFrac),
			"expected shape: equal at low variance; LP-LF degrades faster; both level out",
		},
	}, nil
}
