package experiments

import (
	"fmt"
	"math/rand"

	"prospector/internal/core"
)

// Figure3Config scales the algorithm-comparison experiment.
type Figure3Config struct {
	Nodes   int
	K       int
	Samples int
	Eval    int // held-out epochs per trial
	Trials  int
	Seed    int64
	// BudgetFracs are the approximate planners' energy budgets as
	// fractions of the executed NAIVE-k cost.
	BudgetFracs []float64
	// AccuracySteps are the k' fractions at which the exact
	// algorithms' cost is measured (their accuracy axis).
	AccuracySteps []float64
}

// DefaultFigure3Config mirrors the paper's synthetic comparison at a
// scale the pure-Go simplex handles in seconds.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{
		Nodes:         80,
		K:             16,
		Samples:       20,
		Eval:          12,
		Trials:        3,
		Seed:          1,
		BudgetFracs:   []float64{0.06, 0.1, 0.16, 0.24, 0.34, 0.46, 0.6, 0.8},
		AccuracySteps: []float64{0.25, 0.5, 0.75, 1.0},
	}
}

// QuickFigure3Config is the smoke-test scale shared by `experiments
// -quick`, the CI regress gate, and the manifest-determinism tests.
// One trial matters: runTrials runs trials concurrently, so aggregate
// order (and hence float summation) is only reproducible with Trials=1.
func QuickFigure3Config() Figure3Config {
	cfg := DefaultFigure3Config()
	cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, cfg.Trials = 30, 6, 8, 5, 1
	return cfg
}

// Figure3 regenerates the paper's Figure 3: energy cost against
// accuracy for ORACLE, LP+LF, LP-LF, GREEDY, and NAIVE-k on
// independent-Gaussian data. Expected shape: NAIVE-k far right (most
// expensive per accuracy); GREEDY < LP-LF < LP+LF; ORACLE cheapest.
func Figure3(cfg Figure3Config) (*Result, error) {
	aggs := map[string]*aggregate{
		"Oracle": newAggregate(), "LP+LF": newAggregate(), "LP-LF": newAggregate(),
		"Greedy": newAggregate(), "Naive-k": newAggregate(),
	}
	trialErr := runTrials(cfg.Trials, func(trial int, record func(func())) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
		s, err := gaussianScenario(cfg.Nodes, cfg.K, cfg.Samples, cfg.Eval, 0, rng)
		if err != nil {
			return err
		}
		naive, err := s.naiveKCost(cfg.K)
		if err != nil {
			return err
		}
		// Exact algorithms: vary k' to trade cost for accuracy.
		for _, frac := range cfg.AccuracySteps {
			want := int(frac*float64(cfg.K) + 0.5)
			if want < 1 {
				want = 1
			}
			// NAIVE-k at k'.
			nk, err := core.NaiveKPlan(s.cfg.Net, want)
			if err != nil {
				return err
			}
			cost, _, err := s.evaluate(nk)
			if err != nil {
				return err
			}
			record(func() { aggs["Naive-k"].add(frac, cost, 100*frac) })
			// ORACLE at k': per-epoch plan from the true locations.
			oCost := 0.0
			for _, vals := range s.truth {
				op, err := core.OraclePlan(s.cfg.Net, vals, want)
				if err != nil {
					return err
				}
				oc, _, err := (&scenario{cfg: s.cfg, env: s.env, truth: [][]float64{vals}}).evaluate(op)
				if err != nil {
					return err
				}
				oCost += oc
			}
			record(func() { aggs["Oracle"].add(frac, oCost/float64(len(s.truth)), 100*frac) })
		}
		// Approximate planners across the budget sweep.
		planners := map[string]core.Planner{}
		if g, err := core.NewGreedy(s.cfg); err == nil {
			planners["Greedy"] = g
		} else {
			return err
		}
		if l, err := core.NewLPNoFilter(s.cfg); err == nil {
			planners["LP-LF"] = l
		} else {
			return err
		}
		if f, err := core.NewLPFilter(s.cfg); err == nil {
			planners["LP+LF"] = f
		} else {
			return err
		}
		// Planner-major: each planner walks the whole budget axis before
		// the next starts, so its cached parametric LP serves the sweep
		// as one warm basis chain (one cold solve per planner per trial).
		for _, name := range []string{"Greedy", "LP-LF", "LP+LF"} {
			pl := planners[name]
			for _, frac := range cfg.BudgetFracs {
				budget := frac * naive
				p, err := pl.Plan(budget)
				if err != nil {
					return fmt.Errorf("figure3: %s at budget %.1f: %w", name, budget, err)
				}
				cost, acc, err := s.evaluate(p)
				if err != nil {
					return err
				}
				frac := frac
				record(func() { aggs[name].add(frac, cost, acc) })
			}
		}
		return nil
	})
	if trialErr != nil {
		return nil, trialErr
	}
	res := &Result{
		ID:     "figure3",
		Title:  "Comparison of algorithms (independent Gaussians)",
		XLabel: "energy cost (mJ)",
		YLabel: "accuracy (% of top k)",
		Notes: []string{
			fmt.Sprintf("nodes=%d k=%d samples=%d trials=%d", cfg.Nodes, cfg.K, cfg.Samples, cfg.Trials),
			"expected shape: Oracle cheapest; LP+LF >= LP-LF >= Greedy; Naive-k far costlier",
		},
	}
	for _, name := range []string{"Oracle", "LP+LF", "LP-LF", "Greedy", "Naive-k"} {
		res.Series = append(res.Series, Series{Name: name, Points: aggs[name].costAccuracyPoints()})
	}
	return res, nil
}
