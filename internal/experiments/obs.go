package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"prospector/internal/core"
	"prospector/internal/exec"
	"prospector/internal/obs"
)

// The experiment harnesses are instrumented through a package-level
// registry/tracer pair because figure configs are numerous and
// plumbing an extra field through every one of them would dwarf the
// feature. SetObs is expected to be called once by cmd/experiments
// before any figure runs; trials then share the registry (which is
// concurrency-safe) across goroutines.
var (
	obsMu     sync.RWMutex
	obsReg    *obs.Registry //guarded-by:obsMu
	obsTracer *obs.Tracer   //guarded-by:obsMu
	obsSpan   *obs.Span     //guarded-by:obsMu
)

// SetObs attaches a metrics registry and/or tracer to every scenario
// the harnesses build from now on. Nil values detach.
func SetObs(r *obs.Registry, tr *obs.Tracer) {
	obsMu.Lock()
	obsReg, obsTracer = r, tr
	obsMu.Unlock()
}

// SetSpan parents every subsequent scenario's spans (planner, solver,
// executor) under s — typically one span per figure, so the trace tree
// groups the work by experiment. Nil detaches.
func SetSpan(s *obs.Span) {
	obsMu.Lock()
	//confine:transfer cmd/experiments publishes the figure span before any trial goroutine starts; the obsMu release orders the write
	obsSpan = s
	obsMu.Unlock()
}

func currentObs() (*obs.Registry, *obs.Tracer, *obs.Span) {
	obsMu.RLock()
	defer obsMu.RUnlock()
	return obsReg, obsTracer, obsSpan
}

// newScenario assembles a scenario with the package observability
// attached to both the planner config and the execution environment.
// The LP solver gets a wall clock only when metrics are on: the solver
// itself never reads time (the determinism analyzer enforces that), so
// the clock that feeds lp.solve_seconds is injected here, outside the
// deterministic core.
func newScenario(cfg core.Config, env exec.Env, truth [][]float64) *scenario {
	r, tr, sp := currentObs()
	cfg.Obs = r
	cfg.Trace = tr
	cfg.Span = sp
	env.Obs = r
	env.Trace = tr
	env.Span = sp
	if r != nil && cfg.LP.Now == nil {
		cfg.LP.Now = time.Now
	}
	return &scenario{cfg: cfg, env: env, truth: truth}
}

// Breakdown renders the per-phase cost table of one experiment from
// two registry snapshots taken around it: where the joules and the
// solver time of that figure actually went.
func Breakdown(before, after *obs.Snapshot) string {
	cd := func(name string) int64 {
		var b int64
		if before != nil {
			b = before.Counters[name]
		}
		return after.Counters[name] - b
	}
	gd := func(name string) float64 {
		var b float64
		if before != nil {
			b = before.Gauges[name]
		}
		return after.Gauges[name] - b
	}
	collect := gd("exec.energy_mj.collection")
	trigger := gd("exec.energy_mj.trigger")
	requests := gd("exec.energy_mj.requests")
	total := collect + trigger + requests
	share := func(v float64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * v / total
	}

	var b strings.Builder
	b.WriteString("per-phase cost breakdown:\n")
	fmt.Fprintf(&b, "  %-11s %14s %7s\n", "phase", "energy (mJ)", "share")
	fmt.Fprintf(&b, "  %-11s %14.1f %6.1f%%\n", "collection", collect, share(collect))
	fmt.Fprintf(&b, "  %-11s %14.1f %6.1f%%\n", "trigger", trigger, share(trigger))
	fmt.Fprintf(&b, "  %-11s %14.1f %6.1f%%\n", "requests", requests, share(requests))
	fmt.Fprintf(&b, "  %-11s %14.1f\n", "total", total)
	fmt.Fprintf(&b, "  traffic: %d messages, %d values, %d content bytes\n",
		cd("exec.messages"), cd("exec.values"), cd("exec.bytes"))

	solves := cd("lp.solves")
	if solves > 0 {
		var sumBefore float64
		if before != nil {
			if h, ok := before.Histograms["lp.solve_seconds"]; ok {
				sumBefore = h.Sum
			}
		}
		var solveSec float64
		if h, ok := after.Histograms["lp.solve_seconds"]; ok {
			solveSec = h.Sum - sumBefore
		}
		fmt.Fprintf(&b, "  LP: %d solves, %d iterations, %d pivots (%d degenerate), %.0f ms total solve time\n",
			solves, cd("lp.iterations"), cd("lp.pivots"), cd("lp.degenerate_pivots"), solveSec*1000)
		// Cold-vs-warm split of the solves: a healthy parametric sweep
		// shows one cold solve per (planner, trial) and warm re-solves
		// for the rest of the budget axis.
		fmt.Fprintf(&b, "  LP: %d cold solves, %d warm re-solves (%d fell back cold)\n",
			cd("lp.cold_solves"), cd("lp.warm_resolves"), cd("lp.warm_fallbacks"))
	}
	return b.String()
}
