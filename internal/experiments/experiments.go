// Package experiments regenerates every figure and in-text result of
// the paper's evaluation (Section 5). Each harness builds the workload
// the paper describes, runs the competing planners over multiple
// trials, and reports the same series the paper plots; cmd/experiments
// renders them as text tables and CSV.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/stats"
	"prospector/internal/workload"
)

// Point is one measurement of a series.
type Point struct {
	X, Y float64
}

// Series is one algorithm's curve in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Result is a regenerated figure or study.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render formats the result as a fixed-width text table, one row per X
// value, one column per series.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "x = %s, y = %s\n", r.XLabel, r.YLabel)
	// Collect the union of X values.
	xsSet := map[float64]bool{}
	for _, s := range r.Series {
		for _, p := range s.Points {
			xsSet[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%12s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%12.2f", x)
		for _, s := range r.Series {
			found := false
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, " %14.3f", p.Y)
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the result in long form: series,x,y.
func (r *Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "series,%s,%s\n", csvField(r.XLabel), csvField(r.YLabel)); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvField(s.Name), p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvField(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	return strings.ReplaceAll(s, "\n", " ")
}

// scenario bundles one trial's network, samples, planner config, and
// held-out evaluation epochs.
type scenario struct {
	cfg   core.Config
	env   exec.Env
	truth [][]float64
}

// gaussianScenario builds the synthetic-Gaussian setting of Figures 3
// and 4.
func gaussianScenario(nodes, k, nSamples, nEval int, stddev float64, rng *rand.Rand) (*scenario, error) {
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		return nil, err
	}
	gcfg := workload.DefaultGaussianConfig(nodes)
	src, err := workload.NewGaussianField(gcfg, rng)
	if err != nil {
		return nil, err
	}
	if stddev > 0 {
		src.SetStdDev(stddev)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, nSamples)); err != nil {
		return nil, err
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	return newScenario(
		core.Config{Net: net, Costs: costs, Samples: set, K: k},
		exec.Env{Net: net, Costs: costs},
		workload.Draw(src, nEval),
	), nil
}

// evaluate executes a plan over the held-out epochs, returning mean
// total energy (collection + trigger) and mean accuracy.
func (s *scenario) evaluate(p *plan.Plan) (meanCost, meanAcc float64, err error) {
	for _, vals := range s.truth {
		res, err := exec.Run(s.env, p, vals)
		if err != nil {
			return 0, 0, err
		}
		meanCost += res.Ledger.Total()
		meanAcc += res.Accuracy(vals, s.cfg.K)
	}
	n := float64(len(s.truth))
	return meanCost / n, 100 * meanAcc / n, nil
}

// naiveKCost returns the executed cost of NAIVE-k' on this scenario.
func (s *scenario) naiveKCost(k int) (float64, error) {
	p, err := core.NaiveKPlan(s.cfg.Net, k)
	if err != nil {
		return 0, err
	}
	cost, _, err := s.evaluate(p)
	return cost, err
}

// aggregate folds per-trial (x, y) pairs into one mean point per x.
type aggregate struct {
	byX map[float64]*[2][]float64 // x -> (costs, accs) across trials
}

func newAggregate() *aggregate { return &aggregate{byX: map[float64]*[2][]float64{}} }

func (a *aggregate) add(x, cost, acc float64) {
	e := a.byX[x]
	if e == nil {
		e = &[2][]float64{}
		a.byX[x] = e
	}
	e[0] = append(e[0], cost)
	e[1] = append(e[1], acc)
}

// costAccuracyPoints returns points (mean cost, mean accuracy), sorted
// by cost — the layout of the paper's cost-vs-accuracy figures.
func (a *aggregate) costAccuracyPoints() []Point {
	var pts []Point
	for _, e := range a.byX {
		pts = append(pts, Point{X: stats.Mean(e[0]), Y: stats.Mean(e[1])})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// xValuePoints returns points (x, mean accuracy) keyed by the sweep
// variable itself (variance, zone count, sample count...).
func (a *aggregate) xValuePoints() []Point {
	var pts []Point
	for x, e := range a.byX {
		pts = append(pts, Point{X: x, Y: stats.Mean(e[1])})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// xCostPoints returns points (x, mean cost).
func (a *aggregate) xCostPoints() []Point {
	var pts []Point
	for x, e := range a.byX {
		pts = append(pts, Point{X: x, Y: stats.Mean(e[0])})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	return pts
}

// runTrials executes fn for each trial index concurrently (trials are
// independent by construction: each seeds its own RNG) and returns the
// first error. Aggregates touched by fn must be guarded by the
// returned locker convention: fn receives a lock to hold while
// recording results.
func runTrials(trials int, fn func(trial int, record func(func())) error) error {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		once sync.Once
		err  error
	)
	for trial := 0; trial < trials; trial++ {
		wg.Add(1)
		go func(trial int) {
			defer wg.Done()
			record := func(f func()) {
				mu.Lock()
				defer mu.Unlock()
				f()
			}
			if e := fn(trial, record); e != nil {
				once.Do(func() { err = e })
			}
		}(trial)
	}
	wg.Wait()
	return err
}
