package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

// Figure9Config scales the Intel-lab experiment.
type Figure9Config struct {
	K            int
	SampleEpochs int // leading epochs used as samples
	SampleWindow int // retained window size
	Eval         int // following epochs queried
	Trials       int
	Seed         int64
	BudgetFracs  []float64
	Lab          workload.IntelLabConfig
}

// DefaultFigure9Config follows the paper: 54 motes, shortened radio
// range, the first epochs as samples, queries on the following data.
func DefaultFigure9Config() Figure9Config {
	lab := workload.DefaultIntelLabConfig()
	lab.Epochs = 160
	return Figure9Config{
		K:            10,
		SampleEpochs: 40,
		SampleWindow: 20,
		Eval:         40,
		Trials:       3,
		Seed:         5,
		BudgetFracs:  []float64{0.06, 0.1, 0.15, 0.22, 0.32, 0.45, 0.62, 0.85},
		Lab:          lab,
	}
}

// Figure9 regenerates the paper's Figure 9: cost against accuracy on
// the (synthesized) Intel Lab temperature data for GREEDY, LP-LF, and
// LP+LF. Expected shape: LP+LF and LP-LF nearly identical (top-k
// locations are predictable, so local filtering buys nothing); GREEDY
// lags until high budgets; NAIVE-k more than 3x the cost of the
// approximate planners at near-full accuracy.
func Figure9(cfg Figure9Config) (*Result, error) {
	aggs := map[string]*aggregate{
		"Greedy": newAggregate(), "LP-LF": newAggregate(), "LP+LF": newAggregate(),
	}
	var naiveCost, lpGoodCost float64
	goodTrials := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*86028121))
		lab, err := workload.NewIntelLab(cfg.Lab, rng)
		if err != nil {
			return nil, err
		}
		net, err := lab.Network()
		if err != nil {
			return nil, err
		}
		set := sample.MustNewSet(lab.Size(), cfg.K, cfg.SampleWindow)
		for e := 0; e < cfg.SampleEpochs; e++ {
			if err := set.Add(lab.Epoch(e)); err != nil {
				return nil, err
			}
		}
		var truth [][]float64
		for e := cfg.SampleEpochs; e < cfg.SampleEpochs+cfg.Eval && e < lab.Epochs(); e++ {
			truth = append(truth, lab.Epoch(e))
		}
		costs := plan.NewCosts(net, energy.DefaultModel())
		s := newScenario(
			core.Config{Net: net, Costs: costs, Samples: set, K: cfg.K},
			exec.Env{Net: net, Costs: costs},
			truth,
		)
		naive, err := s.naiveKCost(cfg.K)
		if err != nil {
			return nil, err
		}
		naiveCost += naive
		planners := map[string]core.Planner{}
		if g, err := core.NewGreedy(s.cfg); err == nil {
			planners["Greedy"] = g
		} else {
			return nil, err
		}
		if l, err := core.NewLPNoFilter(s.cfg); err == nil {
			planners["LP-LF"] = l
		} else {
			return nil, err
		}
		if f, err := core.NewLPFilter(s.cfg); err == nil {
			planners["LP+LF"] = f
		} else {
			return nil, err
		}
		trialGood := math.Inf(1)
		// Planner-major (see figure3.go): one warm basis chain per
		// planner per trial instead of interleaved cold solves.
		for _, name := range []string{"Greedy", "LP-LF", "LP+LF"} {
			pl := planners[name]
			for _, frac := range cfg.BudgetFracs {
				budget := frac * naive
				p, err := pl.Plan(budget)
				if err != nil {
					return nil, err
				}
				cost, acc, err := s.evaluate(p)
				if err != nil {
					return nil, err
				}
				aggs[name].add(frac, cost, acc)
				if name == "LP-LF" && acc >= 80 && cost < trialGood {
					trialGood = cost
				}
			}
		}
		if !math.IsInf(trialGood, 1) {
			lpGoodCost += trialGood
			goodTrials++
		}
	}
	naiveCost /= float64(cfg.Trials)
	ratioNote := "no LP-LF point reached 80% accuracy in this sweep"
	if goodTrials > 0 {
		lpGoodCost /= float64(goodTrials)
		ratioNote = fmt.Sprintf("Naive-k executed cost %.1f mJ; cheapest LP-LF at >=80%% accuracy %.1f mJ (ratio %.1fx)",
			naiveCost, lpGoodCost, naiveCost/lpGoodCost)
	}
	res := &Result{
		ID:     "figure9",
		Title:  "Intel Lab data (synthetic reconstruction)",
		XLabel: "energy cost (mJ)",
		YLabel: "accuracy (% of top k)",
		Notes: []string{
			fmt.Sprintf("k=%d sampleEpochs=%d window=%d trials=%d", cfg.K, cfg.SampleEpochs, cfg.SampleWindow, cfg.Trials),
			ratioNote,
			"expected shape: LP+LF ~= LP-LF; Greedy lags until high budget; Naive-k >3x approximate cost",
		},
	}
	for _, name := range []string{"LP+LF", "LP-LF", "Greedy"} {
		res.Series = append(res.Series, Series{Name: name, Points: aggs[name].costAccuracyPoints()})
	}
	return res, nil
}
