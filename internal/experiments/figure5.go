package experiments

import (
	"fmt"
	"math/rand"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/sample"
	"prospector/internal/workload"
)

// ZonesConfig scales the contention-zone experiments (Figures 5-7).
type ZonesConfig struct {
	Zones       int
	K           int // nodes per zone == query k, as in the paper
	Background  int // relay/background nodes (excluding root)
	Samples     int
	Eval        int
	Trials      int
	Seed        int64
	Territorial bool
	// BudgetFracs drives Figure 5's sweep (fractions of NAIVE-k cost);
	// Figure 7 uses a single FixedBudgetFrac.
	BudgetFracs     []float64
	FixedBudgetFrac float64
}

// DefaultZonesConfig mirrors the paper's Figure 6 layout: six zones of
// k nodes around the perimeter, the query root in the center.
func DefaultZonesConfig() ZonesConfig {
	return ZonesConfig{
		Zones:           6,
		K:               8,
		Background:      23,
		Samples:         15,
		Eval:            10,
		Trials:          3,
		Seed:            3,
		Territorial:     true,
		BudgetFracs:     []float64{0.08, 0.14, 0.22, 0.32, 0.45, 0.6, 0.8},
		FixedBudgetFrac: 0.3,
	}
}

// zoneScenario builds one contention-zone trial.
func zoneScenario(cfg ZonesConfig, zones int, rng *rand.Rand) (*scenario, error) {
	nodes := 1 + cfg.Background + zones*cfg.K
	bcfg := network.DefaultBuildConfig(nodes)
	pos, zoneOf := network.ZonePlacement(bcfg, zones, cfg.K, rng)
	// Sparse placements occasionally disconnect; widen the radio range
	// until the spanning tree covers everyone.
	var net *network.Network
	var err error
	for mult := 1.3; ; mult *= 1.3 {
		net, err = network.FromPositions(pos, bcfg.Range*mult)
		if err == nil {
			break
		}
		if mult > 6 {
			return nil, err
		}
	}
	zcfg := workload.DefaultZoneConfig(nodes, zones, cfg.K, zoneOf)
	zcfg.Territorial = cfg.Territorial
	src, err := workload.NewZoneField(zcfg, rng)
	if err != nil {
		return nil, err
	}
	set := sample.MustNewSet(nodes, cfg.K, 0)
	if err := set.AddAll(workload.Draw(src, cfg.Samples)); err != nil {
		return nil, err
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	return newScenario(
		core.Config{Net: net, Costs: costs, Samples: set, K: cfg.K},
		exec.Env{Net: net, Costs: costs},
		workload.Draw(src, cfg.Eval),
	), nil
}

// Figure5 regenerates the paper's Figure 5: cost against accuracy for
// LP+LF and LP-LF in the six-zone contention scenario. Expected shape:
// LP+LF greatly outperforms LP-LF, with the gap widening as the budget
// grows — LP-LF wastes energy acquiring whole zones while LP+LF visits
// several zones and locally filters each down to its few winners.
func Figure5(cfg ZonesConfig) (*Result, error) {
	aggLF := newAggregate()
	aggNo := newAggregate()
	for trial := 0; trial < cfg.Trials; trial++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*15485863))
		s, err := zoneScenario(cfg, cfg.Zones, rng)
		if err != nil {
			return nil, err
		}
		naive, err := s.naiveKCost(cfg.K)
		if err != nil {
			return nil, err
		}
		lf, err := core.NewLPFilter(s.cfg)
		if err != nil {
			return nil, err
		}
		nolf, err := core.NewLPNoFilter(s.cfg)
		if err != nil {
			return nil, err
		}
		// Planner-major: each planner finishes its budget sweep before
		// the other starts, so the parametric LP cache turns all but the
		// first solve of each sweep into warm re-solves.
		for _, frac := range cfg.BudgetFracs {
			budget := frac * naive
			pf, err := lf.Plan(budget)
			if err != nil {
				return nil, err
			}
			cost, acc, err := s.evaluate(pf)
			if err != nil {
				return nil, err
			}
			aggLF.add(frac, cost, acc)
		}
		for _, frac := range cfg.BudgetFracs {
			budget := frac * naive
			pn, err := nolf.Plan(budget)
			if err != nil {
				return nil, err
			}
			cost, acc, err := s.evaluate(pn)
			if err != nil {
				return nil, err
			}
			aggNo.add(frac, cost, acc)
		}
	}
	return &Result{
		ID:     "figure5",
		Title:  "Contention zones (6 zones around the perimeter)",
		XLabel: "energy cost (mJ)",
		YLabel: "accuracy (% of top k)",
		Series: []Series{
			{Name: "LP+LF", Points: aggLF.costAccuracyPoints()},
			{Name: "LP-LF", Points: aggNo.costAccuracyPoints()},
		},
		Notes: []string{
			fmt.Sprintf("zones=%d k=%d territorial=%v trials=%d", cfg.Zones, cfg.K, cfg.Territorial, cfg.Trials),
			"expected shape: LP+LF greatly outperforms LP-LF; gap grows with budget",
		},
	}, nil
}

// Figure7 regenerates the paper's Figure 7: accuracy against zone
// count at a fixed budget. Expected shape: both planners degrade as
// zones multiply (each zone supplies a smaller share of the top k and
// reaching more zones costs more), with LP-LF degrading faster.
func Figure7(cfg ZonesConfig) (*Result, error) {
	aggLF := newAggregate()
	aggNo := newAggregate()
	// Zone counts start at 2: the z=1 corner makes the exceed
	// probability 1/z degenerate (every zone node always exceeds).
	zoneCounts := []int{2, 3, 4, 5, 6}
	for trial := 0; trial < cfg.Trials; trial++ {
		for _, z := range zoneCounts {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)*32452843 + int64(z)))
			zcfg := cfg
			s, err := zoneScenario(zcfg, z, rng)
			if err != nil {
				return nil, err
			}
			naive, err := s.naiveKCost(cfg.K)
			if err != nil {
				return nil, err
			}
			budget := cfg.FixedBudgetFrac * naive
			lf, err := core.NewLPFilter(s.cfg)
			if err != nil {
				return nil, err
			}
			pf, err := lf.Plan(budget)
			if err != nil {
				return nil, err
			}
			_, acc, err := s.evaluate(pf)
			if err != nil {
				return nil, err
			}
			aggLF.add(float64(z), 0, acc)
			nolf, err := core.NewLPNoFilter(s.cfg)
			if err != nil {
				return nil, err
			}
			pn, err := nolf.Plan(budget)
			if err != nil {
				return nil, err
			}
			_, acc, err = s.evaluate(pn)
			if err != nil {
				return nil, err
			}
			aggNo.add(float64(z), 0, acc)
		}
	}
	return &Result{
		ID:     "figure7",
		Title:  "Varying the number of contention zones (fixed budget)",
		XLabel: "number of contended areas",
		YLabel: "accuracy (% of top k)",
		Series: []Series{
			{Name: "LP+LF", Points: aggLF.xValuePoints()},
			{Name: "LP-LF", Points: aggNo.xValuePoints()},
		},
		Notes: []string{
			fmt.Sprintf("k=%d budget=%.0f%% of Naive-k trials=%d", cfg.K, 100*cfg.FixedBudgetFrac, cfg.Trials),
			"expected shape: both degrade with more zones; LP-LF faster",
		},
	}, nil
}
