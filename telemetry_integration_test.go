// Live-telemetry integration: the windowed series a running process
// serves at /debug/telemetry, and the flight recorder's deterministic
// breach dump, exercised through the same module seams the binaries
// wire up (registry → collector → HTTP surface, tracer → flight ring →
// monitor → dump).
package prospector

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/network"
	"prospector/internal/obs"
	"prospector/internal/obs/telemetry"
	"prospector/internal/plan"
	"prospector/internal/regress"
	"prospector/internal/sample"
	"prospector/internal/sim"
	"prospector/internal/traceanalysis"
	"prospector/internal/workload"
)

// TestDebugTelemetryLiveWarmHitRate drives a warm LP budget sweep with
// a collector ticking between plans and scrapes /debug/telemetry in
// the middle of the run: the windowed lp.warm_hit_rate series must be
// live (present, current, nonzero) while the chain is still running.
func TestDebugTelemetryLiveWarmHitRate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const (
		nodes, k, nSamples = 40, 8, 10
	)
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, nSamples)); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := core.Config{Net: net, Costs: plan.NewCosts(net, energy.DefaultModel()),
		Samples: set, K: k, Obs: reg}
	pl, err := core.NewLPFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}

	col := telemetry.NewCollector(reg, 32)
	srv := httptest.NewServer(obs.Handler(reg, telemetry.Endpoints(col)...))
	defer srv.Close()

	scrape := func() *telemetry.Export {
		t.Helper()
		resp, err := http.Get(srv.URL + "/debug/telemetry")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e telemetry.Export
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		return &e
	}

	// Before the first tick the process is alive but not ready.
	for _, probe := range []struct {
		path string
		want int
	}{
		{"/healthz", http.StatusOK},
		{"/readyz", http.StatusServiceUnavailable},
	} {
		resp, err := http.Get(srv.URL + probe.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != probe.want {
			t.Fatalf("%s before first tick = %d, want %d", probe.path, resp.StatusCode, probe.want)
		}
	}

	budgets := []float64{30, 55, 85, 120, 170, 240}
	for i, b := range budgets {
		if _, err := pl.Plan(b); err != nil {
			t.Fatalf("budget %g: %v", b, err)
		}
		col.Sample(float64(i))
		if i == 3 { // mid-run, chain warm, sweep still going
			e := scrape()
			series := e.Series["lp.warm_hit_rate"]
			if len(series) == 0 {
				t.Fatalf("mid-run /debug/telemetry has no lp.warm_hit_rate window; series: %d", len(e.Series))
			}
			if last := series[len(series)-1]; last <= 0 {
				t.Fatalf("mid-run lp.warm_hit_rate = %g, want > 0 (warm chain live)", last)
			}
			if e.Ticks != int64(i)+1 {
				t.Fatalf("mid-run ticks = %d, want %d", e.Ticks, i+1)
			}
			resp, err := http.Get(srv.URL + "/readyz")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("/readyz mid-run = %d, want 200", resp.StatusCode)
			}
		}
	}
	// After the sweep the window holds the whole rate history; the
	// final value must match the registry's own gauge.
	e := scrape()
	series := e.Series["lp.warm_hit_rate"]
	if len(series) != len(budgets) {
		t.Fatalf("lp.warm_hit_rate window = %d samples, want %d", len(series), len(budgets))
	}
	if got, want := series[len(series)-1], reg.Gauge("lp.warm_hit_rate").Value(); got != want {
		t.Fatalf("windowed warm_hit_rate = %g, gauge = %g", got, want)
	}
}

// flightDumpOnce runs a seeded sim workload with the flight recorder
// tapping the tracer and a rule that breaches on the first epoch, and
// returns the dump bytes.
func flightDumpOnce(t *testing.T, seed int64, dir string, run int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const (
		nodes, k, nSamples, epochs = 30, 5, 8, 4
	)
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, nSamples)); err != nil {
		t.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())

	reg := obs.NewRegistry()
	fl := telemetry.NewFlight(64)
	tr := obs.NewTracer(fl) // every record lands in the ring
	dump := filepath.Join(dir, "flight.jsonl")

	cfg := core.Config{Net: net, Costs: costs, Samples: set, K: k, Obs: reg, Trace: tr}
	pl, err := core.NewLPFilter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := core.NaiveKPlan(net, k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(0.4 * (naive.CollectionCost(net, costs) + naive.TriggerCost(net, costs)))
	if err != nil {
		t.Fatal(err)
	}

	// Every simulated epoch observes sim.epoch_mj once, so this
	// breaches on the first tick, with the planning spans and the first
	// epoch's rounds in the ring.
	mon := telemetry.NewMonitor(telemetry.NewCollector(reg, 16), fl, []regress.Rule{
		{Series: "sim.epoch_mj.delta", Kind: "abs<=", Value: 0, Tolerance: 0,
			Note: "injected: every epoch observes once"},
	}, dump)

	scfg := sim.DefaultConfig(net)
	scfg.Obs = reg
	scfg.Trace = tr
	truth := workload.Draw(src, epochs)
	for e, vals := range truth {
		if _, err := sim.Run(scfg, p, vals); err != nil {
			t.Fatal(err)
		}
		if err := mon.Sample(float64(e)); err != nil {
			t.Fatal(err)
		}
	}
	if !mon.Dumped() {
		t.Fatalf("run %d: rule never breached", run)
	}
	b, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFlightDumpSameSeedDeterministic pins the flight recorder's
// byte determinism: two runs of the same seeded sim workload must dump
// identical bytes, and the dump must round-trip through the
// traceanalysis flight reader.
func TestFlightDumpSameSeedDeterministic(t *testing.T) {
	a := flightDumpOnce(t, 7, t.TempDir(), 1)
	b := flightDumpOnce(t, 7, t.TempDir(), 2)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed flight dumps differ:\nrun1 %d bytes\nrun2 %d bytes", len(a), len(b))
	}
	d, err := traceanalysis.ParseFlight(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("dump does not parse as a flight document: %v", err)
	}
	if d.Header.Series != "sim.epoch_mj.delta" || len(d.Trace.Records) == 0 {
		t.Fatalf("parsed dump: header %+v, %d records", d.Header, len(d.Trace.Records))
	}
	if d.Trace.SpanCount() == 0 {
		t.Fatal("dump retained no spans")
	}
}
