// Package prospector's root benchmark suite regenerates every figure
// of the paper at benchmark scale and measures the substrates the
// evaluation depends on (LP solve times, planning, execution), plus
// the ablation benches DESIGN.md calls out.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package prospector

import (
	"bytes"
	"math/rand"
	"testing"

	"prospector/internal/aggregate"

	"prospector/internal/core"
	"prospector/internal/energy"
	"prospector/internal/exec"
	"prospector/internal/experiments"
	"prospector/internal/lp"
	"prospector/internal/network"
	"prospector/internal/plan"
	"prospector/internal/query"
	"prospector/internal/sample"
	"prospector/internal/sim"
	"prospector/internal/workload"
)

// --- One bench per paper figure / study -----------------------------

func BenchmarkFigure3(b *testing.B) {
	cfg := experiments.Figure3Config{
		Nodes: 40, K: 8, Samples: 10, Eval: 5, Trials: 1, Seed: 1,
		BudgetFracs:   []float64{0.1, 0.3, 0.6},
		AccuracySteps: []float64{0.5, 1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	cfg := experiments.Figure4Config{
		Nodes: 30, K: 6, Samples: 8, Eval: 4, Trials: 1, Seed: 2,
		StdDevs: []float64{0.5, 4, 10}, BudgetFrac: 0.3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	cfg := experiments.ZonesConfig{
		Zones: 4, K: 6, Background: 12, Samples: 8, Eval: 4, Trials: 1, Seed: 3,
		Territorial: true, BudgetFracs: []float64{0.15, 0.4},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	cfg := experiments.ZonesConfig{
		Zones: 4, K: 4, Background: 8, Samples: 6, Eval: 3, Trials: 1, Seed: 4,
		Territorial: true, FixedBudgetFrac: 0.3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	cfg := experiments.Figure8Config{
		Nodes: 18, K: 4, Samples: 5, Eval: 3, Trials: 1, Seed: 5,
		BudgetMults: []float64{1.05, 1.4},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	cfg := experiments.DefaultFigure9Config()
	cfg.Trials = 1
	cfg.Lab.Epochs = 50
	cfg.SampleEpochs, cfg.SampleWindow, cfg.Eval = 15, 10, 8
	cfg.BudgetFracs = []float64{0.15, 0.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Figure9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleSizeStudy(b *testing.B) {
	cfg := experiments.SampleSizeConfig{
		Nodes: 24, K: 5, Eval: 4, Trials: 1, Seed: 6,
		SampleCounts: []int{1, 10, 25}, BudgetFrac: 0.3,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.SampleSizeStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstallCostStudy(b *testing.B) {
	cfg := experiments.InstallCostConfig{
		Nodes: 24, K: 5, Samples: 8, Trials: 1, Seed: 7,
		BudgetFracs: []float64{0.2, 0.4},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.InstallCostStudy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- LP solve-time study (the paper's in-text CPLEX timings) --------

type benchScenario struct {
	cfg core.Config
	env exec.Env
}

func benchGaussian(b testing.TB, seed int64, nodes, k, samples int) *benchScenario {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := network.Build(network.DefaultBuildConfig(nodes), rng)
	if err != nil {
		b.Fatal(err)
	}
	src, err := workload.NewGaussianField(workload.DefaultGaussianConfig(nodes), rng)
	if err != nil {
		b.Fatal(err)
	}
	set := sample.MustNewSet(nodes, k, 0)
	if err := set.AddAll(workload.Draw(src, samples)); err != nil {
		b.Fatal(err)
	}
	costs := plan.NewCosts(net, energy.DefaultModel())
	return &benchScenario{
		cfg: core.Config{Net: net, Costs: costs, Samples: set, K: k},
		env: exec.Env{Net: net, Costs: costs},
	}
}

func benchPlanner(b *testing.B, mk func(core.Config) (core.Planner, error), nodes, k, samples int, budgetFrac float64) {
	b.Helper()
	s := benchGaussian(b, 11, nodes, k, samples)
	naive, err := core.NaiveKPlan(s.cfg.Net, k)
	if err != nil {
		b.Fatal(err)
	}
	budget := budgetFrac * naive.CollectionCost(s.cfg.Net, s.cfg.Costs)
	pl, err := mk(s.cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Plan(budget); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPNoFilterPlan60(b *testing.B) {
	benchPlanner(b, func(c core.Config) (core.Planner, error) { return core.NewLPNoFilter(c) }, 60, 10, 15, 0.3)
}

func BenchmarkLPNoFilterPlan120(b *testing.B) {
	benchPlanner(b, func(c core.Config) (core.Planner, error) { return core.NewLPNoFilter(c) }, 120, 20, 20, 0.3)
}

func BenchmarkLPFilterPlan60(b *testing.B) {
	benchPlanner(b, func(c core.Config) (core.Planner, error) { return core.NewLPFilter(c) }, 60, 10, 15, 0.3)
}

func BenchmarkLPFilterPlan120(b *testing.B) {
	benchPlanner(b, func(c core.Config) (core.Planner, error) { return core.NewLPFilter(c) }, 120, 20, 20, 0.3)
}

func BenchmarkProofPlan30(b *testing.B) {
	s := benchGaussian(b, 12, 30, 6, 6)
	pp, err := core.NewProofPlanner(s.cfg)
	if err != nil {
		b.Fatal(err)
	}
	budget := pp.MinBudget() * 1.4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pp.Plan(budget); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBudgetSweep runs one planner across a whole Figure-3-style
// budget axis per iteration: the workload the parametric pipeline
// targets. Warm keeps the planner's cached model and basis chain
// (one cold solve amortized across all iterations); Cold rebuilds and
// cold-solves every Plan call via DisableWarm.
func benchBudgetSweep(b *testing.B, disableWarm bool) {
	b.Helper()
	s := benchGaussian(b, 27, 60, 10, 15)
	s.cfg.DisableWarm = disableWarm
	naive, err := core.NaiveKPlan(s.cfg.Net, 10)
	if err != nil {
		b.Fatal(err)
	}
	base := naive.CollectionCost(s.cfg.Net, s.cfg.Costs)
	fracs := []float64{0.06, 0.1, 0.16, 0.24, 0.34, 0.46, 0.6, 0.8}
	pl, err := core.NewLPNoFilter(s.cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fracs {
			if _, err := pl.Plan(f * base); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBudgetSweepWarm(b *testing.B) { benchBudgetSweep(b, false) }

func BenchmarkBudgetSweepCold(b *testing.B) { benchBudgetSweep(b, true) }

// BenchmarkWarmResolveSteadyState pins the parametric hot path at the
// solver level: mutate the budget row, warm re-solve from the chained
// basis, all scratch served from the Workspace. The allocs/op column
// must read 0 — any regression here rebuilds solver state per call.
// (Planner-level Plan calls still allocate in rounding/repair; the
// zero-alloc contract is lp.Solve's.)
func BenchmarkWarmResolveSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(28))
	m := lp.NewModel()
	m.Maximize()
	var ids []lp.VarID
	for j := 0; j < 120; j++ {
		ids = append(ids, m.MustVar(0, 1, rng.Float64(), ""))
	}
	row := -1
	for r := 0; r < 80; r++ {
		var terms []lp.Term
		for _, id := range ids {
			if rng.Float64() < 0.15 {
				terms = append(terms, lp.Term{Var: id, Coef: 0.5 + rng.Float64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: ids[0], Coef: 1})
		}
		if got := m.MustConstr(terms, lp.LE, 2+rng.Float64()); row < 0 {
			row = got
		}
	}
	ws := lp.NewWorkspace()
	opts := lp.Options{Workspace: ws, KeepBasis: true}
	sol, err := m.Solve(opts)
	if err != nil {
		b.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		b.Fatalf("cold solve ended %v", sol.Status)
	}
	basis := sol.Basis
	rhs := []float64{2.2, 2.8}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.SetRHS(row, rhs[i%2]); err != nil {
			b.Fatal(err)
		}
		opts.Warm = basis
		sol, err := m.Solve(opts)
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("warm solve ended %v", sol.Status)
		}
		basis = sol.Basis
	}
}

// BenchmarkSimplexPricing ablates the entering rule (Dantzig vs Bland)
// on a representative LP+LF program.
func BenchmarkSimplexPricing(b *testing.B) {
	for _, pr := range []struct {
		name string
		p    lp.Pricing
	}{{"Dantzig", lp.Dantzig}, {"Bland", lp.Bland}} {
		b.Run(pr.name, func(b *testing.B) {
			s := benchGaussian(b, 13, 36, 8, 8)
			s.cfg.LP = lp.Options{Pricing: pr.p, MaxIters: 2_000_000}
			pl, err := core.NewLPFilter(s.cfg)
			if err != nil {
				b.Fatal(err)
			}
			naive, err := core.NaiveKPlan(s.cfg.Net, 10)
			if err != nil {
				b.Fatal(err)
			}
			budget := 0.3 * naive.CollectionCost(s.cfg.Net, s.cfg.Costs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Plan(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyVariants ablates the paper's colsum priority against
// the cost-aware extension.
func BenchmarkGreedyVariants(b *testing.B) {
	for _, v := range []struct {
		name string
		mk   func(core.Config) (core.Planner, error)
	}{
		{"Paper", func(c core.Config) (core.Planner, error) { return core.NewGreedy(c) }},
		{"CostAware", func(c core.Config) (core.Planner, error) { return core.NewGreedyCostAware(c) }},
		{"KnapsackDP", func(c core.Config) (core.Planner, error) { return core.NewKnapsack(c) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			benchPlanner(b, v.mk, 80, 12, 15, 0.3)
		})
	}
}

// BenchmarkProofStrictC3 ablates the strict c.3 linearization against
// the paper's omit-the-row formulation.
func BenchmarkProofStrictC3(b *testing.B) {
	for _, v := range []struct {
		name string
		mk   func(core.Config) (*core.ProofPlanner, error)
	}{
		{"Strict", core.NewProofPlanner},
		{"PaperC3", core.NewProofPlannerPaperC3},
	} {
		b.Run(v.name, func(b *testing.B) {
			s := benchGaussian(b, 14, 24, 5, 5)
			pp, err := v.mk(s.cfg)
			if err != nil {
				b.Fatal(err)
			}
			budget := pp.MinBudget() * 1.4
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pp.Plan(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRoundingRepair ablates the budget repair + refill pass.
func BenchmarkRoundingRepair(b *testing.B) {
	for _, v := range []struct {
		name    string
		disable bool
	}{{"WithRepair", false}, {"PlainRounding", true}} {
		b.Run(v.name, func(b *testing.B) {
			s := benchGaussian(b, 15, 60, 10, 12)
			s.cfg.DisableRepair = v.disable
			pl, err := core.NewLPFilter(s.cfg)
			if err != nil {
				b.Fatal(err)
			}
			naive, err := core.NaiveKPlan(s.cfg.Net, 10)
			if err != nil {
				b.Fatal(err)
			}
			budget := 0.3 * naive.CollectionCost(s.cfg.Net, s.cfg.Costs)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pl.Plan(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Execution-engine microbenches -----------------------------------

func BenchmarkExecFiltering(b *testing.B) {
	s := benchGaussian(b, 16, 100, 15, 10)
	pl, err := core.NewLPFilter(s.cfg)
	if err != nil {
		b.Fatal(err)
	}
	naive, err := core.NaiveKPlan(s.cfg.Net, 15)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pl.Plan(0.3 * naive.CollectionCost(s.cfg.Net, s.cfg.Costs))
	if err != nil {
		b.Fatal(err)
	}
	vals := s.cfg.Samples.Values(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(s.env, p, vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecProofAndMopUp(b *testing.B) {
	s := benchGaussian(b, 17, 40, 8, 6)
	pp, err := core.NewProofPlanner(s.cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, err := pp.Plan(pp.MinBudget() * 1.2)
	if err != nil {
		b.Fatal(err)
	}
	vals := s.cfg.Samples.Values(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exec.Run(s.env, p, vals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.State.MopUp(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNaiveOne(b *testing.B) {
	s := benchGaussian(b, 18, 60, 10, 5)
	vals := s.cfg.Samples.Values(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.NaiveOne(s.env, vals, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	set := sample.MustNewSet(200, 20, 50)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := set.Add(vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := network.Build(network.DefaultBuildConfig(200), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPresolve ablates the LP presolve reductions on the PROOF
// program, where chain/bandwidth structure collapses heavily.
func BenchmarkPresolve(b *testing.B) {
	for _, v := range []struct {
		name    string
		disable bool
	}{{"WithPresolve", false}, {"NoPresolve", true}} {
		b.Run(v.name, func(b *testing.B) {
			s := benchGaussian(b, 21, 26, 5, 5)
			s.cfg.DisablePresolve = v.disable
			pp, err := core.NewProofPlanner(s.cfg)
			if err != nil {
				b.Fatal(err)
			}
			budget := pp.MinBudget() * 1.4
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pp.Plan(budget); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimRun measures the discrete-event simulator against the
// analytic executor on the same plan.
func BenchmarkSimRun(b *testing.B) {
	s := benchGaussian(b, 22, 80, 10, 6)
	p, err := core.NaiveKPlan(s.cfg.Net, 10)
	if err != nil {
		b.Fatal(err)
	}
	vals := s.cfg.Samples.Values(0)
	cfg := sim.DefaultConfig(s.cfg.Net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg, p, vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParse measures the declarative front end.
func BenchmarkQueryParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse("SELECT TOP 8 FROM sensors BUDGET 30% USING LP+LF SAMPLES 20"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPSRoundTrip measures MPS serialization of an LP+LF model.
func BenchmarkMPSRoundTrip(b *testing.B) {
	m := lp.NewModel()
	rng := rand.New(rand.NewSource(23))
	var ids []lp.VarID
	for j := 0; j < 200; j++ {
		ids = append(ids, m.MustVar(0, 1, rng.NormFloat64(), ""))
	}
	for r := 0; r < 150; r++ {
		var terms []lp.Term
		for _, id := range ids {
			if rng.Float64() < 0.1 {
				terms = append(terms, lp.Term{Var: id, Coef: rng.NormFloat64()})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, lp.Term{Var: ids[0], Coef: 1})
		}
		m.MustConstr(terms, lp.LE, rng.Float64()*5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := lp.WriteMPS(&buf, m, "bench"); err != nil {
			b.Fatal(err)
		}
		if _, err := lp.ReadMPS(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMopUpVariants compares the broadcast mop-up against the
// per-child tailored refinement the paper sketches and dismisses as
// bringing "only marginal benefits". The bench reports phase-2 energy
// per protocol alongside runtime.
func BenchmarkMopUpVariants(b *testing.B) {
	for _, v := range []struct {
		name     string
		tailored bool
	}{{"Broadcast", false}, {"Tailored", true}} {
		b.Run(v.name, func(b *testing.B) {
			s := benchGaussian(b, 24, 50, 10, 6)
			pp, err := core.NewProofPlanner(s.cfg)
			if err != nil {
				b.Fatal(err)
			}
			p, err := pp.Plan(pp.MinBudget() * 1.1)
			if err != nil {
				b.Fatal(err)
			}
			vals := s.cfg.Samples.Values(0)
			b.ReportAllocs()
			b.ResetTimer()
			energyTotal := 0.0
			for i := 0; i < b.N; i++ {
				res, err := exec.Run(s.env, p, vals)
				if err != nil {
					b.Fatal(err)
				}
				mop, err := res.State.MopUpWith(10, exec.MopUpOptions{Tailored: v.tailored})
				if err != nil {
					b.Fatal(err)
				}
				energyTotal += mop.Ledger.Total()
			}
			b.ReportMetric(energyTotal/float64(b.N), "mJ-phase2/op")
		})
	}
}

// BenchmarkAggregateCollect measures the TAG aggregation layer.
func BenchmarkAggregateCollect(b *testing.B) {
	s := benchGaussian(b, 25, 150, 10, 3)
	vals := s.cfg.Samples.Values(0)
	for _, tc := range []struct {
		name string
		kind aggregate.Kind
	}{{"Max", aggregate.Max}, {"Avg", aggregate.Avg}, {"Median", aggregate.Median}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := aggregate.Collect(s.env, tc.kind, vals, aggregate.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQDigest measures digest insertion and merging.
func BenchmarkQDigest(b *testing.B) {
	rng := rand.New(rand.NewSource(26))
	data := make([]uint64, 1000)
	for i := range data {
		data[i] = uint64(rng.Intn(1 << 12))
	}
	b.Run("Add1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q, err := aggregate.NewQDigest(12, 10)
			if err != nil {
				b.Fatal(err)
			}
			for _, x := range data {
				if err := q.Add(x); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("Merge", func(b *testing.B) {
		mk := func(seed int64) *aggregate.QDigest {
			r := rand.New(rand.NewSource(seed))
			q, _ := aggregate.NewQDigest(12, 10)
			for i := 0; i < 500; i++ {
				_ = q.Add(uint64(r.Intn(1 << 12)))
			}
			return q
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := mk(1)
			if err := a.Merge(mk(2)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLPFilterPlan200 exercises the solver at the paper's full
// evaluation scale (hundreds of nodes, 25 samples); the paper reports
// CPLEX needing seconds-to-tens-of-seconds here.
func BenchmarkLPFilterPlan200(b *testing.B) {
	if testing.Short() {
		b.Skip("multi-second LP; skipped in -short")
	}
	benchPlanner(b, func(c core.Config) (core.Planner, error) { return core.NewLPFilter(c) }, 200, 25, 25, 0.3)
}
