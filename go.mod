module prospector

go 1.22
